// Package victim assembles the vulnerable code the §VI transient
// execution attacks target: the Listing 4 bounds-check victim
// (Spectre-v1 style) and the Listing 5 authorization-check victim whose
// transmitter is a secret-dependent indirect call guarded by a fence.
package victim

import (
	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// Layout fixes the guest data addresses shared by victims and attacks.
type Layout struct {
	// ArraySizeAddr holds the public array's length; the attacker
	// flushes it to open the speculation window.
	ArraySizeAddr uint64
	// ArrayBase is the public array (in-bounds accesses are benign).
	ArrayBase uint64
	ArrayLen  int64
	// SecretBase is the victim's secret byte array. The Spectre index
	// i = SecretBase - ArrayBase + k reaches secret byte k.
	SecretBase uint64
	// AuthAddr holds the variant-2 authorization token; FunTable the
	// two transmitter function pointers; Secret2Addr the single-bit
	// secret selecting between them.
	AuthAddr    uint64
	FunTable    uint64
	Secret2Addr uint64
	// ProbeArray is the classic Spectre-v1 flush+reload array
	// (256 cache lines).
	ProbeArray uint64
}

// DefaultLayout returns the layout used throughout the attacks.
func DefaultLayout() Layout {
	return Layout{
		ArraySizeAddr: 0x1000,
		ArrayBase:     0x2000,
		ArrayLen:      1024,
		SecretBase:    0x3000,
		AuthAddr:      0x1100,
		FunTable:      0x1200,
		Secret2Addr:   0x3800,
		ProbeArray:    0x200000,
	}
}

// AuthToken is the value at AuthAddr that authorizes the variant-2
// victim.
const AuthToken = 0x5A5A

// Registers used by the victim ABI.
const (
	// RegArg carries the caller's argument (index or user id); RegRet
	// the return value.
	RegArg = isa.R1
	RegRet = isa.R0
)

// BoundsCheckVictim emits the Listing 4 victim at the builder's PC:
//
//	uint8_t victim_function(size_t i) {
//	    if (i < array_size) return array[i];
//	    return -1;
//	}
//
// The bounds check loads array_size from memory, so flushing that line
// delays the (macro-fused) compare+branch and opens the transient
// window. Labels: victim_function, victim_oob.
func BoundsCheckVictim(b *asm.Builder, l Layout) {
	b.Label("victim_function")
	b.Load(isa.R3, isa.R2, int64(l.ArraySizeAddr)) // R2 must be zero
	b.Cmp(RegArg, isa.R3)
	b.Jcc(isa.AE, "victim_oob")
	b.Loadb(RegRet, RegArg, int64(l.ArrayBase))
	b.Ret()
	b.Label("victim_oob")
	b.Movi(RegRet, -1)
	b.Ret()
}

// SecretUse emits a routine standing in for the victim's own
// legitimate use of its secret (a crypto library touches its key
// material constantly): it loads secret[R1] architecturally, which
// keeps the byte cache-resident. Spectre-style attacks conventionally
// assume this — without it, a transiently read cold secret cannot
// steer dependent transient code inside the speculation window,
// especially under invisible-speculation defenses where the transient
// read itself cannot warm the cache. Label: victim_use_secret.
func SecretUse(b *asm.Builder, l Layout) {
	b.Label("victim_use_secret")
	b.Loadb(RegRet, RegArg, int64(l.SecretBase))
	b.Ret()
}

// Fence selects the synchronization primitive between the variant-2
// victim's authorization check and its transmitter.
type Fence int

// Fence kinds (Fig 10's three victims).
const (
	// NoFence leaves the gadget unguarded.
	NoFence Fence = iota
	// WithLFENCE inserts LFENCE: younger micro-ops are not dispatched
	// to execution — but they are still fetched, which is exactly what
	// the variant-2 attack needs.
	WithLFENCE
	// WithCPUID inserts CPUID, which serializes fetch itself and
	// closes the channel.
	WithCPUID
)

// String implements fmt.Stringer.
func (f Fence) String() string {
	switch f {
	case NoFence:
		return "none"
	case WithLFENCE:
		return "lfence"
	case WithCPUID:
		return "cpuid"
	default:
		return "fence?"
	}
}

// IndirectCallVictim emits the Listing 5 victim:
//
//	void victim_function(ID user_id) {
//	    if (user_id is authorized) {
//	        lfence;          // per Fence
//	        fun[secret]();   // transmitter: indirect call
//	    }
//	}
//
// The authorization check loads the token from memory (flushable); the
// transmitter is an indirect call through a secret-indexed function
// table. Prior authorized executions encode the secret in the indirect
// branch predictor; a transient fetch at the predicted target leaves a
// micro-op cache footprint before the call is ever dispatched.
// Labels: victim2, victim2_fail.
func IndirectCallVictim(b *asm.Builder, l Layout, f Fence) {
	b.Label("victim2")
	b.Load(isa.R3, isa.R2, int64(l.AuthAddr)) // R2 must be zero
	b.Cmp(RegArg, isa.R3)
	b.Jcc(isa.NE, "victim2_fail")
	switch f {
	case WithLFENCE:
		b.Lfence()
	case WithCPUID:
		b.Cpuid()
	}
	b.Loadb(isa.R4, isa.R2, int64(l.Secret2Addr))
	b.Shli(isa.R4, 3)
	b.Load(isa.R5, isa.R4, int64(l.FunTable))
	b.Calli(isa.R5)
	b.Movi(RegRet, 0)
	b.Ret()
	b.Label("victim2_fail")
	b.Movi(RegRet, -1)
	b.Ret()
}
