package victim

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

// buildAndRun assembles a caller around the victim and runs it.
func runVictim(t *testing.T, build func(b *asm.Builder), setup func(c *cpu.CPU)) *cpu.CPU {
	t.Helper()
	b := asm.New(0x20000)
	build(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	if setup != nil {
		setup(c)
	}
	if res := c.Run(0, prog.MustLabel("entry"), 1_000_000); res.TimedOut {
		t.Fatal("victim run timed out")
	}
	return c
}

func TestBoundsCheckVictimInBounds(t *testing.T) {
	lay := DefaultLayout()
	c := runVictim(t, func(b *asm.Builder) {
		BoundsCheckVictim(b, lay)
		b.Label("entry")
		b.Call("victim_function")
		b.Halt()
	}, func(c *cpu.CPU) {
		c.Mem().Write(lay.ArraySizeAddr, 8, lay.ArrayLen)
		c.Mem().Write(lay.ArrayBase+5, 1, 0x7E)
		c.SetReg(0, RegArg, 5)
		c.SetReg(0, isa.R2, 0)
	})
	if got := c.Reg(0, RegRet); got != 0x7E {
		t.Errorf("in-bounds read returned %#x, want 0x7E", got)
	}
}

func TestBoundsCheckVictimOutOfBounds(t *testing.T) {
	lay := DefaultLayout()
	c := runVictim(t, func(b *asm.Builder) {
		BoundsCheckVictim(b, lay)
		b.Label("entry")
		b.Call("victim_function")
		b.Halt()
	}, func(c *cpu.CPU) {
		c.Mem().Write(lay.ArraySizeAddr, 8, lay.ArrayLen)
		c.SetReg(0, RegArg, lay.ArrayLen+100)
		c.SetReg(0, isa.R2, 0)
	})
	if got := c.Reg(0, RegRet); got != -1 {
		t.Errorf("out-of-bounds returned %d architecturally, want -1", got)
	}
}

func TestBoundsCheckNegativeIndexRejected(t *testing.T) {
	// The AE (unsigned) comparison rejects negative indices too.
	lay := DefaultLayout()
	c := runVictim(t, func(b *asm.Builder) {
		BoundsCheckVictim(b, lay)
		b.Label("entry")
		b.Call("victim_function")
		b.Halt()
	}, func(c *cpu.CPU) {
		c.Mem().Write(lay.ArraySizeAddr, 8, lay.ArrayLen)
		c.SetReg(0, RegArg, -1)
		c.SetReg(0, isa.R2, 0)
	})
	if got := c.Reg(0, RegRet); got != -1 {
		t.Errorf("negative index returned %d, want -1", got)
	}
}

// indirectVictimHarness builds victim2 plus two recorder targets that
// write distinct values to R10.
func indirectVictimHarness(t *testing.T, f Fence) (*cpu.CPU, *asm.Program, Layout) {
	t.Helper()
	lay := DefaultLayout()
	b := asm.New(0x20000)
	IndirectCallVictim(b, lay, f)
	b.Org(0x21000)
	b.Label("fun0")
	b.Movi(isa.R10, 100)
	b.Ret()
	b.Org(0x22000)
	b.Label("fun1")
	b.Movi(isa.R10, 101)
	b.Ret()
	b.Org(0x23000)
	b.Label("entry")
	b.Call("victim2")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.Mem().Write(lay.AuthAddr, 8, AuthToken)
	c.Mem().Write(lay.FunTable, 8, int64(prog.MustLabel("fun0")))
	c.Mem().Write(lay.FunTable+8, 8, int64(prog.MustLabel("fun1")))
	return c, prog, lay
}

func TestIndirectCallVictimDispatchesOnSecret(t *testing.T) {
	for _, f := range []Fence{NoFence, WithLFENCE, WithCPUID} {
		for secret := int64(0); secret <= 1; secret++ {
			c, prog, lay := indirectVictimHarness(t, f)
			c.Mem().Write(lay.Secret2Addr, 1, secret)
			c.SetReg(0, RegArg, AuthToken)
			c.SetReg(0, isa.R2, 0)
			c.SetReg(0, isa.R10, 0)
			if res := c.Run(0, prog.MustLabel("entry"), 1_000_000); res.TimedOut {
				t.Fatalf("fence=%s secret=%d timed out", f, secret)
			}
			if got := c.Reg(0, isa.R10); got != 100+secret {
				t.Errorf("fence=%s secret=%d: called fun writing %d", f, secret, got)
			}
			if got := c.Reg(0, RegRet); got != 0 {
				t.Errorf("fence=%s: authorized call returned %d", f, got)
			}
		}
	}
}

func TestIndirectCallVictimRejectsUnauthorized(t *testing.T) {
	c, prog, lay := indirectVictimHarness(t, NoFence)
	c.Mem().Write(lay.Secret2Addr, 1, 1)
	c.SetReg(0, RegArg, 0xBAD)
	c.SetReg(0, isa.R2, 0)
	c.SetReg(0, isa.R10, 0)
	if res := c.Run(0, prog.MustLabel("entry"), 1_000_000); res.TimedOut {
		t.Fatal("timed out")
	}
	if got := c.Reg(0, RegRet); got != -1 {
		t.Errorf("unauthorized call returned %d, want -1", got)
	}
	if got := c.Reg(0, isa.R10); got != 0 {
		t.Errorf("transmitter ran architecturally for unauthorized caller (R10=%d)", got)
	}
}

func TestFenceStrings(t *testing.T) {
	cases := map[Fence]string{NoFence: "none", WithLFENCE: "lfence", WithCPUID: "cpuid"}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q", f, got)
		}
	}
}

func TestDefaultLayoutDisjoint(t *testing.T) {
	l := DefaultLayout()
	// The secret must sit beyond the public array so the Spectre index
	// is positive, and the probe array must not overlap either.
	if l.SecretBase <= l.ArrayBase+uint64(l.ArrayLen) {
		t.Error("secret overlaps the public array")
	}
	if l.ProbeArray < l.SecretBase+4096 {
		t.Error("probe array too close to the secret")
	}
}
