package victim

import "deaduops/internal/asm"

// Fixture is one fully linked victim program, ready for static
// analysis or simulation. The fixtures are the canonical corpus the
// linter (cmd/uoplint) and the census scanner (cmd/gadgetscan) gate:
// programs this repository itself ships as attack targets.
type Fixture struct {
	Name        string
	Description string
	Prog        *asm.Program
	Layout      Layout
}

// FixtureOrg is the code origin the fixtures assemble at.
const FixtureOrg = 0x20000

// Fixtures assembles the canonical victim corpus under l.
func Fixtures(l Layout) []Fixture {
	return []Fixture{
		{
			Name:        "bounds-check",
			Description: "Listing 4: Spectre-v1 style bounds-check victim",
			Prog:        buildBoundsCheck(l),
			Layout:      l,
		},
		{
			Name:        "pci-vpd",
			Description: "§VI-A pci_vpd_find_tag-style victim: transient read + secret-dependent branch",
			Prog:        BuildPCIVPD(l),
			Layout:      l,
		},
		{
			Name:        "indirect-call",
			Description: "Listing 5: authorization-check victim with secret-indexed indirect call",
			Prog:        buildIndirectCall(l),
			Layout:      l,
		},
	}
}

func buildBoundsCheck(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	BoundsCheckVictim(b, l)
	return b.MustBuild()
}

// BuildPCIVPD assembles the pci_vpd_find_tag-style gadget with its two
// tag handlers linked in. The handlers land in distinct 32-byte code
// regions with different sizes, so the two sides of the tag branch
// have genuinely different micro-op cache footprints — the property
// the paper's §VI-A attack observes and the static divergence checker
// must flag. Exported because the differential validation test drives
// this exact program through the cycle-level front end: the "main"
// harness calls the routine once and halts, so a simulator run and the
// linted program share every address.
func BuildPCIVPD(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	b.Label("main")
	b.Call("vpd_find_tag")
	b.Halt()
	b.Align(64)
	PCIVPDStyleGadget(b, l)
	// Small-tag handler: one region, a single line of work.
	b.Align(64)
	b.Label("vpd_small")
	b.Movi(RegRet, 1)
	b.Ret()
	// Large-tag handler: placed in different regions with a larger
	// body, so its set/way occupancy diverges from vpd_small's.
	b.Align(64)
	b.Org(b.PC() + 0x140) // skew the region mapping away from vpd_small
	b.Label("vpd_large")
	b.Movi(RegRet, 2)
	b.Addi(RegRet, 40)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Ret()
	return b.MustBuild()
}

func buildIndirectCall(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	IndirectCallVictim(b, l, NoFence)
	return b.MustBuild()
}
