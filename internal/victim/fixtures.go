package victim

import (
	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// Fixture is one fully linked victim program, ready for static
// analysis or simulation. The fixtures are the canonical corpus the
// linter (cmd/uoplint) and the census scanner (cmd/gadgetscan) gate:
// programs this repository itself ships as attack targets.
type Fixture struct {
	Name        string
	Description string
	Prog        *asm.Program
	Layout      Layout
}

// FixtureOrg is the code origin the fixtures assemble at.
const FixtureOrg = 0x20000

// Fixtures assembles the canonical victim corpus under l.
func Fixtures(l Layout) []Fixture {
	return []Fixture{
		{
			Name:        "bounds-check",
			Description: "Listing 4: Spectre-v1 style bounds-check victim",
			Prog:        buildBoundsCheck(l),
			Layout:      l,
		},
		{
			Name:        "pci-vpd",
			Description: "§VI-A pci_vpd_find_tag-style victim: transient read + secret-dependent branch",
			Prog:        BuildPCIVPD(l),
			Layout:      l,
		},
		{
			Name:        "indirect-call",
			Description: "Listing 5: authorization-check victim with secret-indexed indirect call",
			Prog:        buildIndirectCall(l),
			Layout:      l,
		},
		{
			Name:        "fn-dispatch",
			Description: "resolvable-dispatch victim: secret branch reached through a program-built function-pointer table",
			Prog:        buildFnDispatch(l),
			Layout:      l,
		},
		{
			Name:        "callee-branch",
			Description: "interprocedural victim: secret branches in callees, passed by register and by spill",
			Prog:        buildCalleeBranch(l),
			Layout:      l,
		},
		{
			Name:        "callee-kill",
			Description: "interprocedural non-victim: callee sanitizes the secret before the caller branches",
			Prog:        buildCalleeKill(l),
			Layout:      l,
		},
		{
			Name:        "jcc-align",
			Description: "Frontal-attack victim: secret branch whose taken path straddles a predecode window",
			Prog:        buildJccAlign(l),
			Layout:      l,
		},
		{
			Name:        "dsb-switch",
			Description: "Leaky-Frontends victim: secret branch whose taken path re-enters legacy decode",
			Prog:        buildDsbSwitch(l),
			Layout:      l,
		},
	}
}

// buildJccAlign assembles the alignment-channel victim the
// secret-dependent-jump-alignment checker gates on: the secret byte
// steers a branch whose taken path places its conditional jump at
// region offset 15 — the two jcc bytes straddle the 16-byte predecode
// window boundary and stall the predecoder on every legacy delivery —
// while the fall-through path's jump sits wholly inside a window. The
// instruction mixes are otherwise NOP padding, so jump alignment is
// the leak the checker must price.
func buildJccAlign(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	b.Label("main")
	b.Xor(isa.R2, isa.R2)
	b.Loadb(RegRet, isa.R2, int64(l.SecretBase))
	b.Cmpi(RegRet, 0)
	b.Jcc(isa.NE, "ja_hot")
	b.Jmp("ja_cold")

	// Fall path: jcc at region offset 12, inside the first window.
	b.Org(FixtureOrg + 0x100)
	b.Label("ja_cold")
	b.Nop(12)
	b.Jcc(isa.EQ, "ja_cold_x")
	b.Label("ja_cold_x")
	b.Halt()

	// Taken path: jcc bytes at offsets 15–16, straddling the boundary.
	b.Org(FixtureOrg + 0x200)
	b.Label("ja_hot")
	b.Nop(12)
	b.Nop(3)
	b.Jcc(isa.EQ, "ja_hot_x")
	b.Label("ja_hot_x")
	b.Halt()
	return b.MustBuild()
}

// buildDsbSwitch assembles the switch-point-channel victim the
// dsb-mite-switch checker gates on: the taken path runs through a
// region over the 18-µop cacheability cap, so a warm traversal still
// pays one DSB→MITE transition there, while the fall-through path
// stays resident end to end. The µop-cache footprints of the two
// directions are what diverges least — the switch count is the signal.
func buildDsbSwitch(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	b.Label("main")
	b.Xor(isa.R2, isa.R2)
	b.Loadb(RegRet, isa.R2, int64(l.SecretBase))
	b.Cmpi(RegRet, 0)
	b.Jcc(isa.NE, "ds_hot")
	b.Jmp("ds_cold")

	// Fall path: 3 µops in one cacheable region.
	b.Org(FixtureOrg + 0x100)
	b.Label("ds_cold")
	b.Nop(15)
	b.Nop(15)
	b.Halt()

	// Taken path: 22 µops packed into one 32-byte region — past the
	// 3-line cap, rejected by the µop cache, MITE-decoded every run.
	b.Org(FixtureOrg + 0x200)
	b.Label("ds_hot")
	for i := 0; i < 20; i++ {
		b.Nop(1)
	}
	b.Nop(11)
	b.Halt()
	return b.MustBuild()
}

func buildBoundsCheck(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	BoundsCheckVictim(b, l)
	return b.MustBuild()
}

// BuildPCIVPD assembles the pci_vpd_find_tag-style gadget with its two
// tag handlers linked in. The handlers land in distinct 32-byte code
// regions with different sizes, so the two sides of the tag branch
// have genuinely different micro-op cache footprints — the property
// the paper's §VI-A attack observes and the static divergence checker
// must flag. Exported because the differential validation test drives
// this exact program through the cycle-level front end: the "main"
// harness calls the routine once and halts, so a simulator run and the
// linted program share every address.
func BuildPCIVPD(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	b.Label("main")
	b.Call("vpd_find_tag")
	b.Halt()
	b.Align(64)
	PCIVPDStyleGadget(b, l)
	// Small-tag handler: one region, a single line of work.
	b.Align(64)
	b.Label("vpd_small")
	b.Movi(RegRet, 1)
	b.Ret()
	// Large-tag handler: placed in different regions with a larger
	// body, so its set/way occupancy diverges from vpd_small's.
	b.Align(64)
	b.Org(b.PC() + 0x140) // skew the region mapping away from vpd_small
	b.Label("vpd_large")
	b.Movi(RegRet, 2)
	b.Addi(RegRet, 40)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Ret()
	return b.MustBuild()
}

func buildIndirectCall(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	IndirectCallVictim(b, l, NoFence)
	return b.MustBuild()
}

// DispatchTable is the program-built function-pointer table the
// fn-dispatch fixture stores its two tag handlers into. Unlike
// FunTable — whose contents exist only in runtime data memory, so the
// Listing 5 dispatch stays a havoc site — both slots are written by
// the program itself, which is what lets the value-set resolution
// prove the dispatch's complete target set.
const DispatchTable = 0x1280

// buildFnDispatch assembles the resolvable-dispatch victim the
// indirect-target resolution gates on: main builds a two-slot handler
// table at DispatchTable, selects a slot with a loaded, masked public
// tag, and calls through it. The secret byte rides in a register
// across the resolved call, and the selected handler branches on it
// with divergent region footprints (the BuildPCIVPD construction) — so
// every finding in the handler exists only because resolution joins
// the handlers' summaries instead of havocking, and each carries a
// call chain through the resolved indirect frame. The decoy handler
// never touches the secret.
func buildFnDispatch(l Layout) *asm.Program {
	const (
		handlerOrg = FixtureOrg + 0x400
		decoyOrg   = FixtureOrg + 0x600
	)
	b := asm.New(FixtureOrg)
	b.Label("main")
	b.Xor(isa.R2, isa.R2)
	b.Movi(isa.R4, handlerOrg)
	b.Store(isa.R2, DispatchTable, isa.R4)
	b.Movi(isa.R4, decoyOrg)
	b.Store(isa.R2, DispatchTable+8, isa.R4)
	b.Loadb(isa.R3, isa.R2, int64(l.SecretBase)) // the secret rides in R3
	b.Loadb(isa.R5, isa.R2, int64(l.AuthAddr))   // public tag selects the slot
	b.Andi(isa.R5, 8)
	b.Addi(isa.R5, DispatchTable)
	b.Load(isa.R6, isa.R5, 0)
	b.Calli(isa.R6)
	b.Halt()

	// fd_handler branches on the secret; its hot path is skewed into
	// larger, differently mapped regions so the branch directions have
	// a genuine footprint delta to price.
	b.Org(handlerOrg)
	b.Label("fd_handler")
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "fd_hot")
	b.Movi(isa.R4, 1)
	b.Ret()
	b.Align(64)
	b.Org(b.PC() + 0x140)
	b.Label("fd_hot")
	b.Movi(isa.R4, 2)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Ret()

	// fd_decoy never reads the secret.
	b.Org(decoyOrg)
	b.Label("fd_decoy")
	b.Movi(isa.R4, 3)
	b.Ret()
	return b.MustBuild()
}

// ScratchSlot is a non-secret scratch location (between AuthAddr and
// FunTable) that the interprocedural fixtures use to pass a value
// through memory instead of a register.
const ScratchSlot = 0x1180

// buildCalleeBranch assembles the interprocedural victim the linter's
// call-chain output gates on: main performs a pci-vpd-style guarded
// read at an attacker-influenced offset and hands the loaded byte to
// two callees — once in the argument register and once spilled through
// ScratchSlot — and each callee branches on it. The divergent sides of
// both branches live in distinct, differently sized 64-byte-aligned
// regions (same construction as BuildPCIVPD's tag handlers) so the
// footprint-divergence checker has a genuine micro-op cache delta to
// price across the call boundary, and the transient-window census must
// attribute the load→branch gadgets as cross-function. R2 is zeroed
// before the length load so the guard itself stays clean: every
// finding belongs to a callee.
func buildCalleeBranch(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	b.Label("main")
	b.Xor(isa.R2, isa.R2)
	b.Load(isa.R3, isa.R2, int64(l.ArraySizeAddr)) // len (flushable guard)
	b.Cmp(RegArg, isa.R3)
	b.Jcc(isa.AE, "cb_oob")
	b.Loadb(RegRet, RegArg, int64(l.ArrayBase)) // transient read of the secret
	b.Mov(RegArg, RegRet)                       // pass by argument register
	b.Store(isa.R2, ScratchSlot, RegRet)        // pass by spill slot
	b.Call("cb_reg")
	b.Call("cb_mem")
	b.Halt()
	b.Label("cb_oob")
	b.Movi(RegRet, -1)
	b.Halt()

	// cb_reg branches on the register argument.
	b.Align(64)
	b.Label("cb_reg")
	b.Cmpi(RegArg, 0)
	b.Jcc(isa.NE, "cb_reg_hot")
	b.Movi(isa.R4, 1)
	b.Ret()
	b.Align(64)
	b.Org(b.PC() + 0x140) // skew the hot path's region mapping
	b.Label("cb_reg_hot")
	b.Movi(isa.R4, 2)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Ret()

	// cb_mem reloads the spilled secret and branches on it.
	b.Align(64)
	b.Label("cb_mem")
	b.Xor(isa.R3, isa.R3)
	b.Loadb(isa.R3, isa.R3, ScratchSlot)
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "cb_mem_hot")
	b.Movi(isa.R5, 1)
	b.Ret()
	b.Align(64)
	b.Org(b.PC() + 0x140)
	b.Label("cb_mem_hot")
	b.Movi(isa.R5, 2)
	b.Addi(isa.R5, 40)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Nop(8)
	b.Ret()
	return b.MustBuild()
}

// buildCalleeKill assembles the interprocedural non-victim: main loads
// the same secret byte, but the callee zeroes the register before main
// branches on it, so every checker must stay silent. This is the
// false-positive gate for the summary kill-set logic — a linter that
// ignores callee effects (or havocs them) would flag the branch.
func buildCalleeKill(l Layout) *asm.Program {
	b := asm.New(FixtureOrg)
	b.Label("main")
	b.Xor(isa.R2, isa.R2)
	b.Loadb(RegRet, isa.R2, int64(l.SecretBase)) // R0 = secret byte
	b.Call("ck_sanitize")
	b.Cmpi(RegRet, 0)
	b.Jcc(isa.NE, "ck_other")
	b.Movi(RegRet, 1)
	b.Halt()
	b.Align(64)
	b.Label("ck_other")
	b.Movi(RegRet, 2)
	b.Halt()

	// ck_sanitize fully kills the secret it was handed.
	b.Align(64)
	b.Label("ck_sanitize")
	b.Xor(RegRet, RegRet)
	b.Ret()
	return b.MustBuild()
}
