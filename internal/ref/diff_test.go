package ref

import (
	"bytes"
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

// runBoth executes prog on the reference interpreter and the pipelined
// core from identical initial state and returns both machines.
func runBoth(t *testing.T, prog *asm.Program, gcfg GenConfig) (*Machine, *cpu.CPU) {
	t.Helper()
	ccfg := cpu.Intel()
	ccfg.KernelEntry = gcfg.KernelEntry

	// Identical initial memory: a deterministic pattern in the scratch
	// window.
	pattern := make([]byte, gcfg.ScratchSize)
	for i := range pattern {
		pattern[i] = byte(i*37 + 11)
	}

	refMem := cpu.NewMemory(ccfg.MemSize)
	refMem.WriteBytes(gcfg.ScratchBase, pattern)
	m := New(prog, refMem, gcfg.KernelEntry)
	m.Regs[isa.R15] = int64(ccfg.StackTop)
	if err := m.Run(prog.Entry, 2_000_000); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	c := cpu.New(ccfg)
	c.LoadProgram(prog)
	c.Mem().WriteBytes(gcfg.ScratchBase, pattern)
	res := c.Run(0, prog.Entry, 50_000_000)
	if res.TimedOut {
		t.Fatal("pipelined run timed out")
	}
	return m, c
}

// compareState asserts architectural equivalence.
func compareState(t *testing.T, seed uint64, m *Machine, c *cpu.CPU, gcfg GenConfig) {
	t.Helper()
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if ref, pipe := m.Regs[r], c.Reg(0, r); ref != pipe {
			t.Errorf("seed %d: %v: ref %#x, pipeline %#x", seed, r, ref, pipe)
		}
	}
	refScr := make([]byte, gcfg.ScratchSize)
	for i := range refScr {
		refScr[i] = byte(m.mem.(*cpu.Memory).Read(gcfg.ScratchBase+uint64(i), 1))
	}
	pipeScr := c.Mem().ReadBytes(gcfg.ScratchBase, int(gcfg.ScratchSize))
	if !bytes.Equal(refScr, pipeScr) {
		for i := range refScr {
			if refScr[i] != pipeScr[i] {
				t.Errorf("seed %d: scratch[%#x]: ref %#x, pipeline %#x",
					seed, i, refScr[i], pipeScr[i])
				break
			}
		}
	}
	if m.KernelMode != c.Backend(0).KernelMode() {
		t.Errorf("seed %d: privilege mismatch", seed)
	}
}

// TestDifferentialRandomPrograms is the core validation of the
// pipelined core: across many random programs — with speculation,
// squashes, fences, syscalls, and memory traffic — the out-of-order
// engine must be architecturally indistinguishable from the sequential
// reference.
func TestDifferentialRandomPrograms(t *testing.T) {
	gcfg := DefaultGenConfig()
	for seed := uint64(1); seed <= 60; seed++ {
		prog, err := Generate(seed, gcfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m, c := runBoth(t, prog, gcfg)
		compareState(t, seed, m, c, gcfg)
	}
}

// TestDifferentialLargePrograms stresses deeper programs (more blocks,
// more memory traffic) at a handful of seeds.
func TestDifferentialLargePrograms(t *testing.T) {
	gcfg := DefaultGenConfig()
	gcfg.Blocks = 20
	gcfg.OpsPerBlock = 16
	for seed := uint64(100); seed < 110; seed++ {
		prog, err := Generate(seed, gcfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m, c := runBoth(t, prog, gcfg)
		compareState(t, seed, m, c, gcfg)
	}
}

// TestReferenceBasics sanity-checks the interpreter itself on a
// hand-written program.
func TestReferenceBasics(t *testing.T) {
	b := asm.New(0x1000)
	b.Movi(isa.R1, 5)
	b.Movi(isa.R2, 7)
	b.Add(isa.R1, isa.R2)
	b.Cmpi(isa.R1, 12)
	b.Jcc(isa.EQ, "ok")
	b.Movi(isa.R3, 111)
	b.Label("ok")
	b.Halt()
	prog := b.MustBuild()
	mem := cpu.NewMemory(1 << 16)
	m := New(prog, mem, 0x4000)
	if err := m.Run(prog.Entry, 1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[isa.R1] != 12 || m.Regs[isa.R3] != 0 {
		t.Errorf("regs %v", m.Regs[:4])
	}
	if !m.Halted() {
		t.Error("not halted")
	}
}

// TestReferenceErrors covers the interpreter's failure modes.
func TestReferenceErrors(t *testing.T) {
	b := asm.New(0x1000)
	b.Label("loop")
	b.Jmp("loop")
	prog := b.MustBuild()
	m := New(prog, cpu.NewMemory(1<<12), 0x4000)
	if err := m.Run(prog.Entry, 100); err == nil {
		t.Error("infinite loop not caught by step limit")
	}
	m2 := New(prog, cpu.NewMemory(1<<12), 0x4000)
	if err := m2.Run(0x9999, 100); err == nil {
		t.Error("unmapped entry accepted")
	}
}

// TestGenerateDeterministic ensures generation is reproducible.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(7, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for i := range a.Insts {
		if a.Insts[i].Op != b.Insts[i].Op || a.Insts[i].Imm != b.Insts[i].Imm {
			t.Fatalf("inst %d differs", i)
		}
	}
	c, err := Generate(8, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() == c.Size() {
		// Same size is possible but identical streams are not.
		same := true
		for i := range a.Insts {
			if a.Insts[i].Op != c.Insts[i].Op || a.Insts[i].Imm != c.Insts[i].Imm {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds generated identical programs")
		}
	}
}
