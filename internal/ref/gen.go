package ref

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// GenConfig shapes random program generation for differential testing.
type GenConfig struct {
	// Blocks is the number of straight-line blocks in the main body.
	Blocks int
	// OpsPerBlock is the number of instructions per block.
	OpsPerBlock int
	// ScratchBase/ScratchSize bound all generated memory accesses.
	ScratchBase uint64
	ScratchSize uint64
	// KernelEntry places the generated kernel routine (for SYSCALL).
	KernelEntry uint64
	// CodeBase places the program.
	CodeBase uint64
}

// DefaultGenConfig returns a medium-sized workload.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Blocks:      6,
		OpsPerBlock: 10,
		ScratchBase: 0x8000,
		ScratchSize: 0x400,
		KernelEntry: 0x40_0000,
		CodeBase:    0x10000,
	}
}

// rng is a splitmix64 generator, deterministic across platforms.
type rng struct{ x uint64 }

func (r *rng) next() uint64 {
	r.x += 0x9E3779B97F4A7C15
	z := r.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// genRegs are the registers the generator mutates freely; R11 stays a
// scratch-window base, R12/R13 are loop counters, R14 is the host's
// loop-count convention, R15 the stack pointer.
var genRegs = []isa.Reg{isa.R0, isa.R1, isa.R2, isa.R3, isa.R4, isa.R5,
	isa.R6, isa.R7, isa.R8, isa.R9, isa.R10}

// Generate builds a deterministic random program from seed: straight-
// line ALU blocks, forward branches, bounded loops, scratch-window
// loads/stores, calls to generated leaf functions, and a syscall to a
// generated kernel routine. The program always terminates.
func Generate(seed uint64, cfg GenConfig) (*asm.Program, error) {
	r := &rng{x: seed}
	b := asm.New(cfg.CodeBase)
	b.Label("entry")

	// Leaf functions are referenced by calls; declare names first.
	nFuncs := 1 + r.intn(2)

	reg := func() isa.Reg { return genRegs[r.intn(len(genRegs))] }
	cond := func() isa.Cond {
		return []isa.Cond{isa.EQ, isa.NE, isa.LT, isa.GE, isa.GT, isa.LE, isa.B, isa.AE}[r.intn(8)]
	}

	// emitOp emits one random non-control instruction.
	emitOp := func() {
		switch r.intn(12) {
		case 0:
			b.Movi(reg(), int64(r.intn(2048)-1024))
		case 1:
			b.Movi64(reg(), int64(r.next()))
		case 2:
			b.Mov(reg(), reg())
		case 3:
			b.Add(reg(), reg())
		case 4:
			b.Subi(reg(), int64(r.intn(64)))
		case 5:
			b.Xor(reg(), reg())
		case 6:
			b.Andi(reg(), int64(r.intn(1024)))
		case 7:
			b.Shli(reg(), int64(r.intn(8)))
		case 8:
			b.Shri(reg(), int64(r.intn(8)))
		case 9:
			// Aligned in-window store: addr = (reg & mask) + base.
			a, v := reg(), reg()
			b.Mov(isa.R11, a)
			b.Andi(isa.R11, int64(cfg.ScratchSize-8))
			b.Andi(isa.R11, ^int64(7))
			b.Store(isa.R11, int64(cfg.ScratchBase), v)
		case 10:
			a, d := reg(), reg()
			b.Mov(isa.R11, a)
			b.Andi(isa.R11, int64(cfg.ScratchSize-8))
			b.Andi(isa.R11, ^int64(7))
			b.Load(d, isa.R11, int64(cfg.ScratchBase))
		case 11:
			b.Or(reg(), reg())
		}
	}

	for blk := 0; blk < cfg.Blocks; blk++ {
		for op := 0; op < cfg.OpsPerBlock; op++ {
			emitOp()
		}
		switch r.intn(4) {
		case 0:
			// Forward conditional skip.
			skip := fmt.Sprintf("skip_%d", blk)
			b.Cmpi(reg(), int64(r.intn(64)))
			b.Jcc(cond(), skip)
			for i := 0; i < 1+r.intn(3); i++ {
				emitOp()
			}
			b.Label(skip)
		case 1:
			// Bounded loop on a dedicated counter.
			loop := fmt.Sprintf("loop_%d", blk)
			b.Movi(isa.R12, int64(2+r.intn(5)))
			b.Label(loop)
			for i := 0; i < 1+r.intn(3); i++ {
				emitOp()
			}
			b.Subi(isa.R12, 1)
			b.Cmpi(isa.R12, 0)
			b.Jcc(isa.NE, loop)
		case 2:
			b.Call(fmt.Sprintf("fn_%d", r.intn(nFuncs)))
		case 3:
			b.Syscall()
		}
	}
	b.Halt()

	// Leaf functions: ALU-only bodies.
	for f := 0; f < nFuncs; f++ {
		b.Align(64)
		b.Label(fmt.Sprintf("fn_%d", f))
		for i := 0; i < 2+r.intn(5); i++ {
			switch r.intn(4) {
			case 0:
				b.Addi(reg(), int64(r.intn(100)))
			case 1:
				b.Xor(reg(), reg())
			case 2:
				b.Shri(reg(), int64(r.intn(4)))
			case 3:
				b.Mov(reg(), reg())
			}
		}
		b.Ret()
	}

	// Kernel routine.
	b.Org(cfg.KernelEntry)
	b.Label("kernel")
	for i := 0; i < 2+r.intn(4); i++ {
		b.Addi(reg(), int64(r.intn(16)))
	}
	b.Sysret()

	return b.Build()
}
