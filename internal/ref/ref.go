// Package ref is a golden-reference interpreter for SX86: a simple
// sequential, in-order, non-speculative executor of the architectural
// semantics. It exists to validate the pipelined core by differential
// testing — any program must leave identical architectural state
// (registers, memory, privilege) on both engines, regardless of how
// the pipeline speculated, squashed, or reordered internally.
package ref

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// Memory is the guest memory interface (satisfied by cpu.Memory).
type Memory interface {
	Read(addr uint64, size int) int64
	Write(addr uint64, size int, v int64)
}

// Machine is the architectural state of the reference interpreter.
type Machine struct {
	Regs  [isa.NumRegs]int64
	Flags isa.Flags
	// KernelMode tracks the privilege level; KernelEntry is the
	// SYSCALL target.
	KernelMode  bool
	KernelEntry uint64

	prog   *asm.Program
	mem    Memory
	sysRet []uint64
	halted bool
	// Steps counts executed macro-ops.
	Steps uint64
}

// New builds a reference machine over a program and memory image.
func New(prog *asm.Program, mem Memory, kernelEntry uint64) *Machine {
	return &Machine{prog: prog, mem: mem, KernelEntry: kernelEntry}
}

// Halted reports whether HALT executed.
func (m *Machine) Halted() bool { return m.halted }

// Run executes from entry until HALT or maxSteps macro-ops. It returns
// an error on an unmapped fetch or step exhaustion — both indicate a
// malformed program rather than an interpreter condition.
func (m *Machine) Run(entry uint64, maxSteps uint64) error {
	pc := entry
	m.halted = false
	for !m.halted {
		if m.Steps >= maxSteps {
			return fmt.Errorf("ref: step limit %d reached at pc %#x", maxSteps, pc)
		}
		in := m.prog.At(pc)
		if in == nil {
			return fmt.Errorf("ref: unmapped fetch at %#x", pc)
		}
		next, err := m.step(in)
		if err != nil {
			return err
		}
		m.Steps++
		pc = next
	}
	return nil
}

// step executes one macro-op and returns the next PC.
func (m *Machine) step(in *isa.Inst) (uint64, error) {
	next := in.End()
	rhs := func() int64 {
		if in.HasImm {
			return in.Imm
		}
		return m.Regs[in.Src]
	}
	setZS := func(v int64) {
		m.Flags.Zero = v == 0
		m.Flags.Sign = v < 0
		m.Flags.Carry = false
	}
	switch in.Op {
	case isa.NOP, isa.CLFLUSH, isa.LFENCE, isa.CPUID, isa.PAUSE,
		isa.MSROMOP, isa.ITLBFLUSH:
		// No architectural effect.
	case isa.MOVI:
		m.Regs[in.Dst] = in.Imm
	case isa.MOV:
		m.Regs[in.Dst] = m.Regs[in.Src]
	case isa.ADD:
		v := m.Regs[in.Dst] + rhs()
		m.Regs[in.Dst] = v
		setZS(v)
	case isa.SUB:
		a, b := m.Regs[in.Dst], rhs()
		v := a - b
		m.Regs[in.Dst] = v
		setZS(v)
		m.Flags.Carry = uint64(a) < uint64(b)
	case isa.AND:
		v := m.Regs[in.Dst] & rhs()
		m.Regs[in.Dst] = v
		setZS(v)
	case isa.OR:
		v := m.Regs[in.Dst] | rhs()
		m.Regs[in.Dst] = v
		setZS(v)
	case isa.XOR:
		v := m.Regs[in.Dst] ^ rhs()
		m.Regs[in.Dst] = v
		setZS(v)
	case isa.SHL:
		v := m.Regs[in.Dst] << (uint64(rhs()) & 63)
		m.Regs[in.Dst] = v
		setZS(v)
	case isa.SHR:
		v := int64(uint64(m.Regs[in.Dst]) >> (uint64(rhs()) & 63))
		m.Regs[in.Dst] = v
		setZS(v)
	case isa.CMP:
		a, b := m.Regs[in.Dst], rhs()
		v := a - b
		setZS(v)
		m.Flags.Carry = uint64(a) < uint64(b)
	case isa.TEST:
		setZS(m.Regs[in.Dst] & rhs())
	case isa.JMP:
		next = uint64(in.Imm)
	case isa.JCC:
		if in.Cond.Eval(m.Flags) {
			next = uint64(in.Imm)
		}
	case isa.JMPI:
		next = uint64(m.Regs[in.Dst])
	case isa.CALL, isa.CALLI:
		sp := m.Regs[isa.R15] - 8
		m.Regs[isa.R15] = sp
		m.mem.Write(uint64(sp), 8, int64(in.End()))
		if in.Op == isa.CALL {
			next = uint64(in.Imm)
		} else {
			next = uint64(m.Regs[in.Dst])
		}
	case isa.RET:
		sp := m.Regs[isa.R15]
		next = uint64(m.mem.Read(uint64(sp), 8))
		m.Regs[isa.R15] = sp + 8
	case isa.LOAD:
		m.Regs[in.Dst] = m.mem.Read(uint64(m.Regs[in.Src]+in.Imm), 8)
	case isa.LOADB:
		m.Regs[in.Dst] = m.mem.Read(uint64(m.Regs[in.Src]+in.Imm), 1)
	case isa.STORE:
		m.mem.Write(uint64(m.Regs[in.Src]+in.Imm), 8, m.Regs[in.Dst])
	case isa.STOREB:
		m.mem.Write(uint64(m.Regs[in.Src]+in.Imm), 1, m.Regs[in.Dst])
	case isa.RDTSC:
		// The reference machine has no cycle clock; differential tests
		// exclude RDTSC (its value is timing-dependent by design).
		m.Regs[in.Dst] = int64(m.Steps)
	case isa.SYSCALL:
		m.sysRet = append(m.sysRet, in.End())
		m.KernelMode = true
		next = m.KernelEntry
	case isa.SYSRET:
		m.KernelMode = false
		if n := len(m.sysRet); n > 0 {
			next = m.sysRet[n-1]
			m.sysRet = m.sysRet[:n-1]
		} else {
			next = 0
		}
	case isa.HALT:
		m.halted = true
	default:
		return 0, fmt.Errorf("ref: unimplemented op %v at %#x", in.Op, in.Addr)
	}
	return next, nil
}
