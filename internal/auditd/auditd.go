package auditd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"deaduops/internal/parsweep"
	"deaduops/internal/profile"
	"deaduops/internal/staticlint"
	"deaduops/internal/victim"
)

// Config tunes a Server.
type Config struct {
	// Workers is the job-queue worker count (GOMAXPROCS when <= 0):
	// how many audit jobs run concurrently.
	Workers int
	// QueueCap bounds the pending-job queue (minimum 1). A full queue
	// rejects submissions with 429 + Retry-After.
	QueueCap int
	// JobWorkers is the per-job parsweep.Map worker count used to lint
	// the job's programs (GOMAXPROCS when <= 0).
	JobWorkers int
	// MaxJobs bounds the retained job results (minimum 1); the oldest
	// are forgotten first.
	MaxJobs int
}

// JobRequest is the POST /v1/jobs body, mirroring the CLI flags: the
// zero value audits the full victim corpus under the default profile
// with all checkers at info severity — exactly `uoplint -json`.
type JobRequest struct {
	// Fixture lints only the named corpus program (uoplint -fixture).
	Fixture string `json:"fixture,omitempty"`
	// Random additionally lints this many generated programs
	// (uoplint -random).
	Random int `json:"random,omitempty"`
	// Profile selects the front-end profile (uoplint -profile);
	// empty means the default.
	Profile string `json:"profile,omitempty"`
	// Checkers restricts the run to the named checkers
	// (uoplint -checkers); empty means all.
	Checkers []string `json:"checkers,omitempty"`
	// Severity is the minimum severity to report (uoplint -severity);
	// empty means info.
	Severity string `json:"severity,omitempty"`
}

// Job is the GET /v1/jobs/{id} body. CacheHits/CacheMisses count the
// report-layer cache outcomes of the job's programs — they ride in the
// job envelope, not the reports, so each ProgramReport stays
// byte-identical to the CLI wire form.
type Job struct {
	ID     string `json:"id"`
	Status string `json:"status"` // queued | running | done | failed
	Error  string `json:"error,omitempty"`
	// Reports appear when Status is done, in corpus order.
	Reports     []ProgramReport `json:"reports,omitempty"`
	CacheHits   int             `json:"cache_hits"`
	CacheMisses int             `json:"cache_misses"`
}

// JobCounters aggregates job outcomes for /v1/stats.
type JobCounters struct {
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Retained  int    `json:"retained"`
}

// Stats is the GET /v1/stats body: the cache's hit/miss counters, the
// queue's live depth, and the precision aggregate (havoc rate) over
// every report the server has produced.
type Stats struct {
	Cache      staticlint.CacheStats `json:"cache"`
	QueueDepth int                   `json:"queue_depth"`
	Workers    int                   `json:"workers"`
	Jobs       JobCounters           `json:"jobs"`
	// IndirectSites/ResolvedSites sum the per-program precision
	// metrics; HavocRate is the unresolved fraction (0 when the corpus
	// has no indirect sites).
	IndirectSites int     `json:"indirect_sites"`
	ResolvedSites int     `json:"resolved_sites"`
	HavocRate     float64 `json:"havoc_rate"`
}

// Server is the audit service: one shared incremental cache, one
// bounded worker pool, and a FIFO-retained job table. It implements
// http.Handler.
type Server struct {
	cfg    Config
	layout victim.Layout
	corpus []Program
	cache  *staticlint.Cache
	pool   *parsweep.Pool
	mux    *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	counters JobCounters
	indirect int
	resolved int
}

// New builds a Server (and its corpus) under cfg.
func New(cfg Config) (*Server, error) {
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 1
	}
	if cfg.MaxJobs < 1 {
		cfg.MaxJobs = 1
	}
	lay := victim.DefaultLayout()
	corpus, err := Corpus(lay)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		layout: lay,
		corpus: corpus,
		cache:  staticlint.NewCache(),
		pool:   parsweep.NewPool(cfg.Workers, cfg.QueueCap),
		jobs:   make(map[string]*Job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// Close drains the job queue and joins the workers.
func (s *Server) Close() { s.pool.Close() }

// Cache exposes the shared incremental cache (tests and stats).
func (s *Server) Cache() *staticlint.Cache { return s.cache }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// jobPlan is a fully validated submission: everything the worker needs,
// resolved up front so a bad request fails with 400 at submit time, not
// as a failed job.
type jobPlan struct {
	req     JobRequest
	cfg     staticlint.Config
	profTag string
	minSev  staticlint.Severity
}

// plan validates a request against the same rules the CLI flags
// enforce.
func (s *Server) plan(req JobRequest) (*jobPlan, error) {
	if req.Random < 0 {
		return nil, fmt.Errorf("random must be >= 0, got %d", req.Random)
	}
	profName := req.Profile
	if profName == "" {
		profName = profile.Default().Name
	}
	prof, err := profile.Get(profName)
	if err != nil {
		return nil, err
	}
	// Default-profile reports keep an empty profile tag so the service
	// wire form matches the CLI's historical golden files byte for byte.
	profTag := ""
	if prof.Name != profile.Default().Name {
		profTag = prof.Name
	}
	sev := req.Severity
	if sev == "" {
		sev = "info"
	}
	minSev, err := staticlint.ParseSeverity(sev)
	if err != nil {
		return nil, err
	}
	cfg := staticlint.ConfigForProfile(prof)
	if len(req.Checkers) > 0 {
		sel, err := staticlint.SelectCheckers(req.Checkers)
		if err != nil {
			return nil, err
		}
		cfg.Checkers = sel
	}
	if req.Fixture != "" {
		known := false
		names := make([]string, 0, len(s.corpus))
		for _, p := range s.corpus {
			names = append(names, p.Name)
			known = known || p.Name == req.Fixture
		}
		if !known {
			return nil, fmt.Errorf("unknown fixture %q (valid: %s)", req.Fixture, strings.Join(names, ", "))
		}
	}
	return &jobPlan{req: req, cfg: cfg, profTag: profTag, minSev: minSev}, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	p, err := s.plan(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	s.seq++
	job := &Job{ID: fmt.Sprintf("job-%d", s.seq), Status: "queued"}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	for len(s.order) > s.cfg.MaxJobs {
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
	s.mu.Unlock()

	if !s.pool.TrySubmit(func() { s.runJob(job, p) }) {
		// Backpressure: the queue is full. Drop the job entry and tell
		// the client when to come back.
		s.mu.Lock()
		delete(s.jobs, job.ID)
		for i, id := range s.order {
			if id == job.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.counters.Rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full (capacity %d); retry later", s.cfg.QueueCap)
		return
	}
	s.mu.Lock()
	s.counters.Accepted++
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID, "status": "queued"})
}

// runJob executes one audit on a pool worker. A panic anywhere in the
// analysis marks the job failed instead of taking the worker down —
// parsweep re-raises worker panics as *parsweep.PanicError, so the
// original fault and its stack survive into the job's error text.
func (s *Server) runJob(job *Job, p *jobPlan) {
	defer func() {
		if v := recover(); v != nil {
			s.finishJob(job, nil, 0, 0, fmt.Errorf("audit panicked: %v", v))
		}
	}()

	programs := make([]Program, 0, len(s.corpus)+p.req.Random)
	for _, prog := range s.corpus {
		if p.req.Fixture != "" && prog.Name != p.req.Fixture {
			continue
		}
		programs = append(programs, prog)
	}
	if p.req.Random > 0 {
		randoms, err := RandomPrograms(p.req.Random)
		if err != nil {
			s.finishJob(job, nil, 0, 0, err)
			return
		}
		programs = append(programs, randoms...)
	}

	s.mu.Lock()
	job.Status = "running"
	s.mu.Unlock()

	type lintOut struct {
		report ProgramReport
		hit    bool
	}
	results, err := parsweep.Map(parsweep.Options{Workers: s.cfg.JobWorkers}, len(programs),
		func(i int) (lintOut, error) {
			prog := programs[i]
			r, hit := staticlint.LintCached(prog.Prog, prog.Spec, p.cfg, s.cache)
			r = r.Filter(p.minSev)
			return lintOut{
				report: ProgramReport{
					Program:     prog.Name,
					Description: prog.Description,
					Profile:     p.profTag,
					Findings:    r.Findings,
					Resolved:    r.Resolved,
					Precision:   r.Precision,
				},
				hit: hit,
			}, nil
		})
	if err != nil {
		s.finishJob(job, nil, 0, 0, err)
		return
	}
	reports := make([]ProgramReport, len(results))
	hits, misses := 0, 0
	for i, res := range results {
		reports[i] = res.report
		if res.hit {
			hits++
		} else {
			misses++
		}
	}
	s.finishJob(job, reports, hits, misses, nil)
}

func (s *Server) finishJob(job *Job, reports []ProgramReport, hits, misses int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job.CacheHits, job.CacheMisses = hits, misses
	if err != nil {
		job.Status, job.Error = "failed", err.Error()
		s.counters.Failed++
		return
	}
	job.Status, job.Reports = "done", reports
	s.counters.Completed++
	for _, r := range reports {
		if r.Precision != nil {
			s.indirect += r.Precision.IndirectSites
			s.resolved += r.Precision.ResolvedSites
		}
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	var cp Job
	if ok {
		cp = *job
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{
		Cache:         s.cache.Stats(),
		QueueDepth:    s.pool.QueueDepth(),
		Workers:       s.pool.Workers(),
		Jobs:          s.counters,
		IndirectSites: s.indirect,
		ResolvedSites: s.resolved,
	}
	st.Jobs.Retained = len(s.jobs)
	if s.indirect > 0 {
		st.HavocRate = 1 - float64(s.resolved)/float64(s.indirect)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}
