package auditd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deaduops/internal/profile"
	"deaduops/internal/staticlint"
	"deaduops/internal/victim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submitJob(t *testing.T, ts *httptest.Server, body string) (id string, status int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID, resp.StatusCode
}

// wireJob mirrors Job with raw report bodies: Finding and ResolvedSite
// marshal addresses as hex strings and define no unmarshaler, so tests
// compare the wire bytes instead of round-tripping.
type wireJob struct {
	ID          string            `json:"id"`
	Status      string            `json:"status"`
	Error       string            `json:"error"`
	Reports     []json.RawMessage `json:"reports"`
	CacheHits   int               `json:"cache_hits"`
	CacheMisses int               `json:"cache_misses"`
}

// compactJSON normalizes indented wire JSON for byte comparison.
func compactJSON(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitJob(t *testing.T, ts *httptest.Server, id string) wireJob {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("job %s: status %d", id, resp.StatusCode)
		}
		var job wireJob
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch job.Status {
		case "done", "failed":
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobRoundTrip is the service's core contract: a default job
// audits the full corpus, its reports are byte-identical to what a
// direct staticlint run produces, and resubmitting the same job is a
// pure cache hit with byte-identical reports.
func TestJobRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, MaxJobs: 16})

	id, code := submitJob(t, ts, `{}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	job := waitJob(t, ts, id)
	if job.Status != "done" {
		t.Fatalf("job failed: %s", job.Error)
	}

	// The reports must match a direct run over the same corpus.
	lay := victim.DefaultLayout()
	corpus, err := Corpus(lay)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Reports) != len(corpus) {
		t.Fatalf("job returned %d reports, corpus has %d programs", len(job.Reports), len(corpus))
	}
	cfg := staticlint.ConfigForProfile(profile.Default())
	for i, p := range corpus {
		r := staticlint.Lint(p.Prog, p.Spec, cfg)
		want, err := json.Marshal(ProgramReport{
			Program:     p.Name,
			Description: p.Description,
			Findings:    r.Findings,
			Resolved:    r.Resolved,
			Precision:   r.Precision,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := compactJSON(t, job.Reports[i]); !bytes.Equal(got, want) {
			t.Errorf("%s: service report diverges from direct lint:\n%s\nvs\n%s", p.Name, got, want)
		}
	}
	if job.CacheMisses != len(corpus) || job.CacheHits != 0 {
		t.Errorf("cold job: %d hits / %d misses, want 0 / %d", job.CacheHits, job.CacheMisses, len(corpus))
	}

	// Same job again: every program served from the report cache,
	// byte-identical findings.
	id2, _ := submitJob(t, ts, `{}`)
	job2 := waitJob(t, ts, id2)
	if job2.Status != "done" {
		t.Fatalf("warm job failed: %s", job2.Error)
	}
	if job2.CacheHits != len(corpus) || job2.CacheMisses != 0 {
		t.Errorf("warm job: %d hits / %d misses, want %d / 0", job2.CacheHits, job2.CacheMisses, len(corpus))
	}
	for i := range job.Reports {
		if !bytes.Equal(compactJSON(t, job.Reports[i]), compactJSON(t, job2.Reports[i])) {
			t.Errorf("report %d: warm bytes diverge from cold", i)
		}
	}
}

// TestJobRequestMirrorsCLI exercises the flag-shaped request fields:
// fixture filtering, random programs, profile tagging, checker
// selection, and the severity display filter.
func TestJobRequestMirrorsCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, MaxJobs: 16})

	id, _ := submitJob(t, ts, `{"fixture":"pci-vpd","random":2,"profile":"zen","checkers":["secret-dependent-branch"],"severity":"info"}`)
	job := waitJob(t, ts, id)
	if job.Status != "done" {
		t.Fatalf("job failed: %s", job.Error)
	}
	// pci-vpd plus random-1, random-2.
	if len(job.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(job.Reports))
	}
	wantNames := []string{"pci-vpd", "random-1", "random-2"}
	for i, raw := range job.Reports {
		var r struct {
			Program  string `json:"program"`
			Profile  string `json:"profile"`
			Findings []struct {
				Checker string `json:"checker"`
			} `json:"findings"`
		}
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		if r.Program != wantNames[i] {
			t.Errorf("report %d: program %q, want %q", i, r.Program, wantNames[i])
		}
		if r.Profile != "zen" {
			t.Errorf("%s: profile tag %q, want zen", r.Program, r.Profile)
		}
		for _, f := range r.Findings {
			if f.Checker != "secret-dependent-branch" {
				t.Errorf("%s: finding from unselected checker %s", r.Program, f.Checker)
			}
		}
	}
}

// TestJobValidation pins the 400 contract: a malformed request fails at
// submit time with a useful message, never as a failed job.
func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, MaxJobs: 4})
	cases := []struct {
		name, body, wantErr string
	}{
		{"bad json", `{`, "decoding"},
		{"unknown field", `{"fixtures":"x"}`, "unknown field"},
		{"bad profile", `{"profile":"pentium"}`, "profile"},
		{"bad severity", `{"severity":"catastrophic"}`, "severity"},
		{"bad checker", `{"checkers":["zzz-bogus","aaa-bogus"]}`, `unknown checkers "aaa-bogus", "zzz-bogus"`},
		{"unknown fixture", `{"fixture":"no-such"}`, `unknown fixture "no-such"`},
		{"negative random", `{"random":-3}`, "random"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(out.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, out.Error, tc.wantErr)
		}
	}
}

// TestBackpressure429 pins the overflow contract: with the one worker
// wedged and the queue full, a submission is rejected immediately with
// 429 and a Retry-After hint — and succeeds once the queue drains.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1, MaxJobs: 4})

	// Wedge the worker, then fill the one queue slot.
	release := make(chan struct{})
	if !s.pool.TrySubmit(func() { <-release }) {
		t.Fatal("could not wedge the worker")
	}
	// The worker may need a moment to claim the wedge job before the
	// queue slot frees up for the filler.
	deadline := time.Now().Add(5 * time.Second)
	for !s.pool.TrySubmit(func() {}) {
		if time.Now().After(deadline) {
			t.Fatal("could not fill the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit against a full queue: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response carries no Retry-After header")
	}
	var st Stats
	statsGet(t, ts, &st)
	if st.Jobs.Rejected != 1 {
		t.Errorf("rejected counter %d, want 1", st.Jobs.Rejected)
	}

	close(release)
	id, code := submitJob(t, ts, `{"fixture":"bounds-check"}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-drain submit: status %d, want 202", code)
	}
	if job := waitJob(t, ts, id); job.Status != "done" {
		t.Fatalf("post-drain job failed: %s", job.Error)
	}
}

func statsGet(t *testing.T, ts *httptest.Server, st *Stats) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
}

// TestStatsAndHealth pins /v1/stats after a warm re-audit (cache hits
// visible, havoc aggregate populated) and the /healthz liveness probe.
func TestStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8, MaxJobs: 8})

	for i := 0; i < 2; i++ {
		id, _ := submitJob(t, ts, `{}`)
		if job := waitJob(t, ts, id); job.Status != "done" {
			t.Fatalf("job failed: %s", job.Error)
		}
	}
	var st Stats
	statsGet(t, ts, &st)
	if st.Cache.ReportHits == 0 || st.Cache.ReportMisses == 0 {
		t.Errorf("cache counters not populated: %+v", st.Cache)
	}
	if st.Jobs.Accepted != 2 || st.Jobs.Completed != 2 {
		t.Errorf("job counters %+v, want 2 accepted / 2 completed", st.Jobs)
	}
	if st.Workers != 1 {
		t.Errorf("workers %d, want 1", st.Workers)
	}
	// The corpus holds both a resolvable dispatch (fn-dispatch) and a
	// data-dependent one (indirect-call): the aggregate must show
	// indirect sites with a havoc rate strictly between 0 and 1.
	if st.IndirectSites < 2 || st.ResolvedSites < 1 {
		t.Errorf("precision aggregate %d indirect / %d resolved, want >= 2 / >= 1", st.IndirectSites, st.ResolvedSites)
	}
	if st.HavocRate <= 0 || st.HavocRate >= 1 {
		t.Errorf("havoc rate %v, want in (0, 1)", st.HavocRate)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestJobNotFound: unknown job IDs are 404, not empty 200s.
func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1, MaxJobs: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestJobRetention: the job table is FIFO-bounded, so old results age
// out as 404 while recent ones stay queryable.
func TestJobRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8, MaxJobs: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		id, code := submitJob(t, ts, `{"fixture":"bounds-check"}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		waitJob(t, ts, id)
		ids = append(ids, id)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job %s: status %d, want 404", ids[0], resp.StatusCode)
	}
	if job := waitJob(t, ts, ids[2]); job.Status != "done" {
		t.Errorf("retained job %s lost: %+v", ids[2], job)
	}
}

// TestRunJobPanicContained: a panic inside an audit marks the job
// failed (with the fault in the error text) instead of killing the
// worker — the parsweep.PanicError round trip end to end.
func TestRunJobPanicContained(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueCap: 4, MaxJobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A nil program makes the analysis panic on first touch.
	s.corpus = []Program{{Name: "boom", Prog: nil}}
	p, err := s.plan(JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	job := &Job{ID: "job-x", Status: "queued"}
	s.jobs[job.ID] = job
	s.runJob(job, p)
	if job.Status != "failed" {
		t.Fatalf("job status %q, want failed", job.Status)
	}
	if !strings.Contains(job.Error, "panic") {
		t.Errorf("job error %q does not mention the panic", job.Error)
	}
	// The server survives: a real job on a fresh corpus still runs.
	corpus, err := Corpus(victim.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	s.corpus = corpus
	job2 := &Job{ID: "job-y", Status: "queued"}
	s.jobs[job2.ID] = job2
	s.runJob(job2, p)
	if job2.Status != "done" {
		t.Fatalf("post-panic job status %q (%s), want done", job2.Status, job2.Error)
	}
}
