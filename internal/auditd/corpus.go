// Package auditd implements the long-lived leakage-audit service
// behind cmd/uoplintd: an HTTP/JSON front door over the same corpus
// and checkers cmd/uoplint runs once, backed by a bounded job queue
// (parsweep.Pool) and the incremental per-function summary cache
// (staticlint.Cache), so re-auditing a corpus after an edit
// re-analyzes only what the edit reaches.
package auditd

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/attack"
	"deaduops/internal/ref"
	"deaduops/internal/staticlint"
	"deaduops/internal/victim"
)

// Program is one audit unit: a linked guest program plus the secret
// declaration it is linted under. The CLI and the service share this
// corpus so their reports are interchangeable.
type Program struct {
	Name        string
	Description string
	Prog        *asm.Program
	Spec        staticlint.Spec
}

// VictimSpec declares the secrets of the shared victim layout: the
// kernel secret array and the second secret word. The ABI constant
// "R2 = 0" is deliberately NOT declared — the linter models the victim
// as callable with arbitrary registers, so loads whose address depends
// on an unresolved register are reported at may confidence.
func VictimSpec(l victim.Layout) staticlint.Spec {
	return staticlint.Spec{
		SecretRanges: []staticlint.MemRange{
			{Start: l.SecretBase, End: l.SecretBase + uint64(l.ArrayLen)},
			{Start: l.Secret2Addr, End: l.Secret2Addr + 8},
		},
	}
}

// Corpus assembles the canonical audit corpus: every victim fixture
// under its secret spec, then the three codegen-emitted attack probes
// (tiger, fast tiger, zebra), which carry no secrets — a finding on
// one is a checker false positive the selftest pins.
func Corpus(l victim.Layout) ([]Program, error) {
	var out []Program
	spec := VictimSpec(l)
	for _, fx := range victim.Fixtures(l) {
		out = append(out, Program{
			Name:        fx.Name,
			Description: fx.Description,
			Prog:        fx.Prog,
			Spec:        spec,
		})
	}
	g := attack.DefaultGeometry()
	probes := []struct {
		name, desc string
		build      func() (*attack.Routine, error)
	}{
		{"attack-tiger", "codegen tiger probe (LCP-padded prime+probe receiver)",
			func() (*attack.Routine, error) { return attack.Build(attack.Tiger(0x40000, g, "tiger")) }},
		{"attack-fasttiger", "codegen fast-tiger probe (dense low-latency receiver)",
			func() (*attack.Routine, error) { return attack.Build(attack.FastTiger(0x40000, g, "fasttiger")) }},
		{"attack-zebra", "codegen zebra probe (alternate-set occupancy pattern)",
			func() (*attack.Routine, error) { return attack.Build(attack.Zebra(0x40000, g, "zebra")) }},
	}
	for _, p := range probes {
		r, err := p.build()
		if err != nil {
			return nil, fmt.Errorf("auditd: building %s: %w", p.name, err)
		}
		out = append(out, Program{Name: p.name, Description: p.desc, Prog: r.Prog})
	}
	return out, nil
}

// RandomPrograms generates n reference programs under the default
// generator config, named random-1..random-n exactly as the CLI's
// -random flag does. Random programs carry no declared secrets; only
// the transient gadget checkers can fire on them.
func RandomPrograms(n int) ([]Program, error) {
	genCfg := ref.DefaultGenConfig()
	out := make([]Program, 0, n)
	for seed := 1; seed <= n; seed++ {
		p, err := ref.Generate(uint64(seed), genCfg)
		if err != nil {
			return nil, fmt.Errorf("auditd: generating random-%d: %w", seed, err)
		}
		out = append(out, Program{Name: fmt.Sprintf("random-%d", seed), Prog: p})
	}
	return out, nil
}
