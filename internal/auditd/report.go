package auditd

import "deaduops/internal/staticlint"

// ProgramReport is the JSON wire form for one linted program —
// byte-identical to the form cmd/uoplint has always emitted, so a
// service response and a CLI run are interchangeable artifacts.
// Profile names the front-end profile the program was linted under; it
// is omitted for the default profile so the historical golden files
// stay byte-stable. Resolved and Precision carry the indirect-target
// resolution's output and are omitted for programs with no indirect
// control flow, for the same reason.
type ProgramReport struct {
	Program     string                    `json:"program"`
	Description string                    `json:"description,omitempty"`
	Profile     string                    `json:"profile,omitempty"`
	Findings    []staticlint.Finding      `json:"findings"`
	Resolved    []staticlint.ResolvedSite `json:"resolved_targets,omitempty"`
	Precision   *staticlint.Precision     `json:"precision,omitempty"`
}
