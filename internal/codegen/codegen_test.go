package codegen

import (
	"testing"

	"deaduops/internal/cpu"
	"deaduops/internal/isa"
)

func TestChainValidate(t *testing.T) {
	good := ChainSpec{Base: 0x10000, Sets: []int{0, 4}, Ways: 4, NopPerRegion: 2, NopLen: 14}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []ChainSpec{
		{Base: 0x10001, Sets: []int{0}, Ways: 1},                              // misaligned
		{Base: 0x10000, Sets: nil, Ways: 1},                                   // no sets
		{Base: 0x10000, Sets: []int{0}, Ways: 0},                              // no ways
		{Base: 0x10000, Sets: []int{32}, Ways: 1},                             // set out of range
		{Base: 0x10000, Sets: []int{0}, Ways: 1, NopPerRegion: 3, NopLen: 15}, // 47 bytes
		{Base: 0x10000, Sets: []int{0}, Ways: 1, NopPerRegion: 1, NopLen: 16}, // bad nop
		{Base: 0x10000, Sets: []int{0}, Ways: 1, NopPerRegion: -1, NopLen: 1}, // negative
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestChainGeometryHelpers(t *testing.T) {
	s := ChainSpec{Base: 0x10000, Sets: []int{1, 5}, Ways: 3, NopPerRegion: 2, NopLen: 10}
	if s.Regions() != 6 || s.UopsPerRegion() != 3 || s.TotalUops() != 18 {
		t.Errorf("geometry %d/%d/%d", s.Regions(), s.UopsPerRegion(), s.TotalUops())
	}
	if got := s.RegionAddr(5, 2); got != 0x10000+2*1024+5*32 {
		t.Errorf("RegionAddr %#x", got)
	}
}

func TestChainRegionsLandInDeclaredSets(t *testing.T) {
	s := ChainSpec{Base: 0x10000, Sets: []int{3, 19}, Ways: 4, Label: "c"}
	for _, set := range s.Sets {
		for w := 0; w < s.Ways; w++ {
			addr := s.RegionAddr(set, w)
			if got := int(addr>>5) & 31; got != set {
				t.Errorf("region (%d,%d) at %#x maps to set %d", set, w, addr, got)
			}
		}
	}
}

func TestChainTraversalOrder(t *testing.T) {
	// Executing the loop must touch every region exactly once per
	// iteration, verified by instruction count.
	s := &ChainSpec{Base: 0x10000, Sets: []int{0, 8}, Ways: 3,
		NopPerRegion: 1, NopLen: 5, Label: "c"}
	prog, err := s.LoopProgram(s.Base + 5*WayStride + 16*RegionSize)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, 10)
	res := c.Run(0, prog.Entry, 1_000_000)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	// Per iteration: 6 regions × (1 nop + 1 jmp) + tail (sub, cmp, jcc)
	// = 15 macro-ops; plus the entry jmp once.
	want := uint64(10*15 + 1 + 1) // + final halt
	if res.Retired != want {
		t.Errorf("retired %d, want %d", res.Retired, want)
	}
}

func TestLoopProgramTailCollision(t *testing.T) {
	s := &ChainSpec{Base: 0x10000, Sets: []int{0}, Ways: 4, Label: "c"}
	if _, err := s.LoopProgram(s.Base + 1024); err == nil {
		t.Error("tail inside chain span accepted")
	}
}

func TestLoopProgramTailBeforeChain(t *testing.T) {
	s := &ChainSpec{Base: 0x10000, Sets: []int{0}, Ways: 2, Label: "c"}
	prog, err := s.LoopProgram(0x8000)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, 3)
	if res := c.Run(0, prog.Entry, 100_000); res.TimedOut {
		t.Error("tail-first layout timed out")
	}
}

func TestEvenSets(t *testing.T) {
	cases := []struct {
		n, first int
		want     []int
	}{
		{4, 0, []int{0, 8, 16, 24}},
		{4, 2, []int{2, 10, 18, 26}},
		{8, 0, []int{0, 4, 8, 12, 16, 20, 24, 28}},
		{1, 5, []int{5}},
		{32, 0, nil}, // all sets: stride 1
	}
	for _, tc := range cases {
		got := EvenSets(tc.n, tc.first)
		if tc.want == nil {
			if len(got) != tc.n {
				t.Errorf("EvenSets(%d,%d) len %d", tc.n, tc.first, len(got))
			}
			continue
		}
		if len(got) != len(tc.want) {
			t.Fatalf("EvenSets(%d,%d) = %v", tc.n, tc.first, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("EvenSets(%d,%d) = %v, want %v", tc.n, tc.first, got, tc.want)
				break
			}
		}
	}
	if EvenSets(0, 0) != nil {
		t.Error("EvenSets(0) not nil")
	}
}

func TestSequentialRegionsAlignment(t *testing.T) {
	s := &ChainSpec{}
	_ = s
	prog, err := SequentialLoop(0x10000, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 4 regions must start 32-aligned and hold 3 NOPs.
	nops := 0
	for _, in := range prog.Insts {
		if in.Op == isa.NOP {
			nops++
		}
	}
	if nops != 12 {
		t.Errorf("nops %d, want 12", nops)
	}
}

func TestSequentialLoopExecutes(t *testing.T) {
	prog, err := SequentialLoop(0x10000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, 5)
	res := c.Run(0, prog.Entry, 1_000_000)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := c.Reg(0, isa.R14); got != 0 {
		t.Errorf("loop counter %d after run", got)
	}
}

func TestSequentialRejectsUnencodable(t *testing.T) {
	if _, err := SequentialLoop(0x10000, 2, 64); err == nil {
		t.Error("64 µops per 32-byte region accepted")
	}
	// A misaligned base is fine: the builder aligns to the next
	// 32-byte boundary before the first region.
	prog, err := SequentialLoop(0x10001, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if prog.MustLabel("loop")%RegionSize != 0 {
		t.Error("loop start not region-aligned")
	}
}

func TestChainMsromEmission(t *testing.T) {
	// A chain with MsromUops set must place exactly one microcoded
	// macro-op of that µop count in every region, and the geometry
	// helpers must price it into the per-traversal µop total.
	s := &ChainSpec{Base: 0x10000, Sets: []int{2, 9}, Ways: 2,
		NopPerRegion: 1, NopLen: 4, MsromUops: 8, Label: "m"}
	if got, want := s.UopsPerRegion(), 1+8+1; got != want {
		t.Errorf("UopsPerRegion = %d, want %d", got, want)
	}
	if got, want := s.TotalUops(), 4*(1+8+1); got != want {
		t.Errorf("TotalUops = %d, want %d", got, want)
	}
	prog, err := s.LoopProgram(0x8000)
	if err != nil {
		t.Fatal(err)
	}
	perRegion := map[uint64]int{}
	for _, in := range prog.Insts {
		if in.Op != isa.MSROMOP {
			continue
		}
		if in.UopCount != 8 {
			t.Errorf("msrom at %#x has UopCount %d, want 8", in.Addr, in.UopCount)
		}
		perRegion[in.Addr&^uint64(RegionSize-1)]++
	}
	if len(perRegion) != s.Regions() {
		t.Fatalf("msrom ops span %d regions, want %d", len(perRegion), s.Regions())
	}
	for addr, n := range perRegion {
		if n != 1 {
			t.Errorf("region %#x holds %d msrom ops, want 1", addr, n)
		}
	}
	// The chain must still execute end to end.
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, 2)
	if res := c.Run(0, prog.Entry, 1_000_000); res.TimedOut {
		t.Error("msrom chain timed out")
	}
}

// TestProbeChainShape pins the shared tiger region shape: ProbeChain
// over an arbitrary set list must produce the same region bodies the
// attack tigers use (two LCP 14-byte NOPs plus the jump).
func TestProbeChainShape(t *testing.T) {
	s := ProbeChain(0x40000, []int{3, 7, 19}, 8, "probe")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NopPerRegion != TigerNops || s.NopLen != TigerNopLen || !s.LCP {
		t.Errorf("probe chain shape %+v not tiger-shaped", s)
	}
	if s.UopsPerRegion() != 3 {
		t.Errorf("probe region µops %d, want 3", s.UopsPerRegion())
	}
	if got := s.BodyBytes(); got != TigerNops*TigerNopLen+2 {
		t.Errorf("probe region body %d bytes, want %d", got, TigerNops*TigerNopLen+2)
	}
	if s.Regions() != 24 {
		t.Errorf("regions %d, want 3 sets × 8 ways", s.Regions())
	}
}

// TestTailAddrAvoidsChainSets is the regression for the old "+1" tail
// rule: with a dense set list the tail used to land inside a probed
// set, polluting the occupancy the probe measures.
func TestTailAddrAvoidsChainSets(t *testing.T) {
	cases := [][]int{
		{4},          // sparse: tail in set 5, as before
		{1, 2, 3, 4}, // dense ascending: +1 would collide with set 2
		{31, 0, 1},   // wraps past set 31
		{5, 9, 6, 7}, // unsorted with a gap
	}
	for _, sets := range cases {
		s := ProbeChain(0x40000, sets, 2, "p")
		tail := s.TailAddr()
		tailSet := int(tail / RegionSize % (WayStride / RegionSize))
		for _, set := range sets {
			if tailSet == set {
				t.Errorf("sets %v: tail %#x lands in probed set %d", sets, tail, set)
			}
		}
		lo := s.RegionAddr(minInt(s.Sets), 0)
		hi := s.RegionAddr(maxInt(s.Sets), s.Ways-1) + RegionSize
		if tail >= lo && tail < hi {
			t.Errorf("sets %v: tail %#x inside chain span [%#x,%#x)", sets, tail, lo, hi)
		}
		if _, err := s.LoopProgram(tail); err != nil {
			t.Errorf("sets %v: loop program rejects own tail: %v", sets, err)
		}
	}
}

// TestChainJccOffsetEmission pins the alignment-channel region shape:
// a JccOffset chain must place the never-taken conditional jump at
// exactly the requested byte offset of every region, with the compare
// immediately before it and the tail NOPs between it and the chain
// jump.
func TestChainJccOffsetEmission(t *testing.T) {
	straddle := &ChainSpec{Base: 0x10000, Sets: []int{0, 8}, Ways: 2,
		NopPerRegion: 3, NopLen: 4, JccOffset: 15, JccTailNops: 4, Label: "a"}
	if err := straddle.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := straddle.UopsPerRegion(), 3+1+4+1; got != want {
		t.Errorf("UopsPerRegion = %d, want %d", got, want)
	}
	if got, want := straddle.BodyBytes(), 15+2+4+2; got != want {
		t.Errorf("BodyBytes = %d, want %d", got, want)
	}
	prog, err := straddle.LoopProgram(0x8000)
	if err != nil {
		t.Fatal(err)
	}
	cmps, jccs := map[uint64]bool{}, map[uint64]bool{}
	for _, in := range prog.Insts {
		off := in.Addr % RegionSize
		switch {
		case in.Op == isa.CMP && !in.HasImm:
			cmps[in.Addr-off] = off == 12
		case in.Op == isa.JCC && in.Cond == isa.NE && in.Addr >= straddle.Base:
			jccs[in.Addr-off] = off == 15
		}
	}
	if len(cmps) != straddle.Regions() || len(jccs) != straddle.Regions() {
		t.Fatalf("cmp/jcc in %d/%d regions, want %d", len(cmps), len(jccs), straddle.Regions())
	}
	for addr, ok := range cmps {
		if !ok {
			t.Errorf("region %#x: compare not at offset 12", addr)
		}
	}
	for addr, ok := range jccs {
		if !ok {
			t.Errorf("region %#x: jcc not at offset 15", addr)
		}
	}
	// The never-taken jump must not change traversal: the loop runs to
	// completion and drains the counter.
	c := cpu.New(cpu.Intel())
	c.LoadProgram(prog)
	c.SetReg(0, isa.R14, 5)
	if res := c.Run(0, prog.Entry, 1_000_000); res.TimedOut {
		t.Fatal("jcc chain timed out")
	}
	if got := c.Reg(0, isa.R14); got != 0 {
		t.Errorf("loop counter %d after run", got)
	}
}

// TestChainJccOffsetMatchedPair verifies the channel's two halves can
// be built µop-identical: a straddling chain (jcc at 15) and an aligned
// chain (jcc at 12) with matched µop counts and predecode windows, so
// the only per-region cost difference is the alignment stall.
func TestChainJccOffsetMatchedPair(t *testing.T) {
	straddle := &ChainSpec{Base: 0x10000, Sets: []int{0}, Ways: 2,
		NopPerRegion: 3, NopLen: 4, JccOffset: 15, JccTailNops: 4, Label: "s"}
	aligned := &ChainSpec{Base: 0x10000, Sets: []int{0}, Ways: 2,
		NopPerRegion: 3, NopLen: 3, JccOffset: 12, JccTailNops: 4, Label: "l"}
	for _, s := range []*ChainSpec{straddle, aligned} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if straddle.UopsPerRegion() != aligned.UopsPerRegion() {
		t.Errorf("µops differ: %d vs %d", straddle.UopsPerRegion(), aligned.UopsPerRegion())
	}
	sw := (straddle.BodyBytes() + 15) / 16
	aw := (aligned.BodyBytes() + 15) / 16
	if sw != aw {
		t.Errorf("predecode windows differ: %d vs %d", sw, aw)
	}
}

func TestChainJccOffsetValidate(t *testing.T) {
	bad := []ChainSpec{
		// Padding does not reach the offset.
		{Base: 0x10000, Sets: []int{0}, Ways: 1, NopPerRegion: 2, NopLen: 4, JccOffset: 15},
		// MSROM macro-op and jcc are exclusive.
		{Base: 0x10000, Sets: []int{0}, Ways: 1, MsromUops: 8, JccOffset: 3},
		// No room for the compare.
		{Base: 0x10000, Sets: []int{0}, Ways: 1, JccOffset: 2},
		// Tail nops without a jcc.
		{Base: 0x10000, Sets: []int{0}, Ways: 1, JccTailNops: 3},
		// Body overflows the region.
		{Base: 0x10000, Sets: []int{0}, Ways: 1, NopPerRegion: 4, NopLen: 5, JccOffset: 23, JccTailNops: 6},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad jcc spec %d accepted", i)
		}
	}
}
