// Package codegen generates micro-op cache-shaped code: chains of
// 32-byte regions that land in chosen cache sets and occupy a chosen
// number of ways. It is the code-generation half of the paper's §IV
// framework — the characterization microbenchmarks (Listings 1-3) and
// the tiger/zebra attack functions are all instances of these chains.
package codegen

import (
	"fmt"
	"sort"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// RegionSize is the micro-op cache region granularity in bytes.
const RegionSize = 32

// WayStride is the address distance between two regions that map to
// the same set of a 32-set micro-op cache (32 sets × 32 bytes).
const WayStride = 1024

// TigerNops and TigerNopLen shape one probe/tiger conflict region: two
// LCP-padded 14-byte NOPs plus the chain jump = 3 µops in 30 bytes,
// with six cycles of predecoder stall on every legacy decode. The
// shape is shared by the §IV tiger/zebra functions (internal/attack)
// and the static receiver model (internal/staticlint), so the probe
// the model prices is the probe the attack runs.
const (
	TigerNops   = 2
	TigerNopLen = 14
)

// ProbeChain returns a tiger-shaped chain over an explicit set list:
// ways regions in each listed set, each region TigerNops LCP-padded
// NOPs plus the chain jump. Unlike the evenly striped attack tigers,
// the set list is arbitrary — a receiver probing exactly the divergent
// sets of a victim uses this form.
func ProbeChain(base uint64, sets []int, ways int, label string) *ChainSpec {
	return &ChainSpec{
		Base: base, Sets: sets, Ways: ways,
		NopPerRegion: TigerNops, NopLen: TigerNopLen, LCP: true,
		Label: label,
	}
}

// ChainSpec describes a jump chain across micro-op cache sets and ways.
// The chain visits Ways regions in each listed set (all ways of the
// first set, then the next set, …), each region holding NopPerRegion
// NOPs of NopLen bytes followed by a jump to the next region.
type ChainSpec struct {
	// Base is the address of set 0, way 0; it must be WayStride-aligned
	// so set indices are honest.
	Base uint64
	// Sets lists the target set indices (0..31).
	Sets []int
	// Ways is the number of regions per set.
	Ways int
	// NopPerRegion is the number of NOP macro-ops per region; NopLen
	// their encoded length. LCP marks them with length-changing
	// prefixes, maximizing legacy-decode cost (the tiger trick).
	NopPerRegion int
	NopLen       int
	LCP          bool
	// MsromUops, when nonzero, inserts one microcoded macro-op of that
	// many micro-ops between the NOPs and the jump of every region. An
	// MSROM macro-op consumes a whole micro-op cache line and streams
	// from the sequencer under legacy decode — the other
	// decode-latency amplifier besides LCP.
	MsromUops int
	// JccOffset, when nonzero, places a never-taken conditional jump at
	// exactly that byte offset inside every region: the NOPs pad to
	// JccOffset-3 bytes, then CMP R1,R1 (3 bytes) sets EQ so the
	// following 2-byte JCC NE never fires, then JccTailNops single-byte
	// NOPs, then the chain jump. The offset pins the jump's position
	// relative to the 16-byte predecode window — offset 15 straddles the
	// boundary and pays decode.Config.JccAlignPenalty on every legacy
	// decode, any offset ≤ 13 (or ≥ 16, mod the window) does not — which
	// is the alignment-channel amplifier (the Frontal-attack layout).
	// Requires NopPerRegion*NopLen == JccOffset-3 and no MSROM macro-op.
	JccOffset int
	// JccTailNops pads the region after the conditional jump with that
	// many single-byte NOPs, letting two chains with different JccOffset
	// match each other's µop count and byte length exactly.
	JccTailNops int
	// NumSets is the number of sets in the target cache geometry; it
	// fixes the chain's way stride at NumSets×RegionSize bytes. Zero
	// means the classic 32-set layout (WayStride bytes), so existing
	// chains keep their addresses; a 64-set (Zen 2-like) cache needs
	// NumSets=64 for same-set regions to actually collide.
	NumSets int
	// Label prefixes the generated labels, letting several chains
	// coexist in one builder.
	Label string
}

// numSets returns the set count of the target geometry (32 when unset).
func (s *ChainSpec) numSets() int {
	if s.NumSets > 0 {
		return s.NumSets
	}
	return WayStride / RegionSize
}

// wayStride returns the address distance between two same-set regions.
func (s *ChainSpec) wayStride() uint64 {
	return uint64(s.numSets()) * RegionSize
}

// Validate checks geometric feasibility: the region body plus a 2-byte
// terminating jump must fit in RegionSize bytes.
func (s *ChainSpec) Validate() error {
	if s.NumSets < 0 || (s.NumSets > 0 && s.NumSets&(s.NumSets-1) != 0) {
		return fmt.Errorf("codegen: NumSets %d not a power of two", s.NumSets)
	}
	if s.Base%s.wayStride() != 0 {
		return fmt.Errorf("codegen: base %#x not %d-aligned", s.Base, s.wayStride())
	}
	if s.Ways <= 0 || len(s.Sets) == 0 {
		return fmt.Errorf("codegen: empty chain (%d ways, %d sets)", s.Ways, len(s.Sets))
	}
	for _, set := range s.Sets {
		if set < 0 || set >= s.numSets() {
			return fmt.Errorf("codegen: set %d out of range", set)
		}
	}
	if s.NopPerRegion < 0 {
		return fmt.Errorf("codegen: negative nop count %d", s.NopPerRegion)
	}
	if s.NopPerRegion > 0 && (s.NopLen < 1 || s.NopLen > 15) {
		return fmt.Errorf("codegen: bad nop shape %d×%d", s.NopPerRegion, s.NopLen)
	}
	if s.MsromUops != 0 && (s.MsromUops < 5 || s.MsromUops > 200) {
		return fmt.Errorf("codegen: bad msrom µop count %d (want 0 or 5..200)", s.MsromUops)
	}
	if s.JccTailNops < 0 {
		return fmt.Errorf("codegen: negative jcc tail nop count %d", s.JccTailNops)
	}
	if s.JccTailNops > 0 && s.JccOffset == 0 {
		return fmt.Errorf("codegen: jcc tail nops without a jcc offset")
	}
	if s.JccOffset != 0 {
		if s.JccOffset < 3 {
			return fmt.Errorf("codegen: jcc offset %d leaves no room for the compare", s.JccOffset)
		}
		if s.MsromUops != 0 {
			return fmt.Errorf("codegen: jcc offset and msrom macro-op are exclusive")
		}
		if pad := s.NopPerRegion * s.NopLen; pad != s.JccOffset-3 {
			return fmt.Errorf("codegen: nop padding %d bytes does not place the jcc at offset %d (want %d)",
				pad, s.JccOffset, s.JccOffset-3)
		}
	}
	if body := s.regionBodyBytes(); body > RegionSize {
		return fmt.Errorf("codegen: region body %d bytes exceeds %d", body, RegionSize)
	}
	return nil
}

// regionBodyBytes returns the encoded size of one region: NOPs, the
// optional MSROM macro-op (3 bytes) or compare+jcc pair (5 bytes) and
// tail NOPs, and the 2-byte terminating jump.
func (s *ChainSpec) regionBodyBytes() int {
	body := s.NopPerRegion*s.NopLen + 2
	if s.MsromUops > 0 {
		body += 3
	}
	if s.JccOffset > 0 {
		body += 5 + s.JccTailNops
	}
	return body
}

// BodyBytes returns the encoded size of one region body — the span a
// fetch range must cover to stream the whole region.
func (s *ChainSpec) BodyBytes() int { return s.regionBodyBytes() }

// TailAddr returns a loop-tail address clear of the chain: one way
// stride past the chain's top way, in the first set index after
// Sets[0] that the chain itself does not occupy. Scanning past the
// chain's own sets matters when the set list is dense (a receiver
// probing adjacent divergent sets): the naive "+1" rule would park the
// tail inside a probed set, and the tail's own line would then pollute
// the very occupancy the probe measures.
func (s *ChainSpec) TailAddr() uint64 {
	nsets := s.numSets()
	tailSet := 0
	if len(s.Sets) > 0 {
		occupied := make(map[int]bool, len(s.Sets))
		for _, set := range s.Sets {
			occupied[set] = true
		}
		tailSet = (s.Sets[0] + 1) % nsets
		for occupied[tailSet] {
			tailSet = (tailSet + 1) % nsets
		}
	}
	return s.Base + uint64(s.Ways+1)*s.wayStride() + uint64(tailSet)*RegionSize
}

// UopsPerRegion returns the micro-op count of each region (NOPs, the
// optional MSROM macro-op or macro-fused compare+jcc pair and tail
// NOPs, plus the jump).
func (s *ChainSpec) UopsPerRegion() int {
	n := s.NopPerRegion + s.MsromUops + 1
	if s.JccOffset > 0 {
		n += 1 + s.JccTailNops
	}
	return n
}

// Regions returns the number of regions in the chain.
func (s *ChainSpec) Regions() int { return len(s.Sets) * s.Ways }

// TotalUops returns the chain's micro-op count per traversal.
func (s *ChainSpec) TotalUops() int { return s.Regions() * s.UopsPerRegion() }

// RegionAddr returns the address of the region at (set, way).
func (s *ChainSpec) RegionAddr(set, way int) uint64 {
	return s.Base + uint64(way)*s.wayStride() + uint64(set)*RegionSize
}

// region is one emission unit.
type region struct {
	addr  uint64
	label string
	next  string // label of the jump target ("" = exit)
}

// Emit lays the chain into b. Entry is at label "<Label>_entry"; the
// last region jumps to exitLabel (which the caller must define). The
// builder's PC must be at or below the chain's lowest address.
func (s *ChainSpec) Emit(b *asm.Builder, exitLabel string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	var regs []region
	for si, set := range s.Sets {
		for w := 0; w < s.Ways; w++ {
			regs = append(regs, region{
				addr:  s.RegionAddr(set, w),
				label: fmt.Sprintf("%s_s%d_w%d", s.Label, si, w),
			})
		}
	}
	for i := range regs {
		if i+1 < len(regs) {
			regs[i].next = regs[i+1].label
		} else {
			regs[i].next = exitLabel
		}
	}

	// Emit in address order; traversal order lives in the jump links.
	emitOrder := make([]*region, len(regs))
	for i := range regs {
		emitOrder[i] = &regs[i]
	}
	sort.Slice(emitOrder, func(i, j int) bool { return emitOrder[i].addr < emitOrder[j].addr })
	for i, r := range emitOrder {
		if i > 0 && emitOrder[i-1].addr == r.addr {
			return fmt.Errorf("codegen: duplicate region address %#x", r.addr)
		}
		b.Org(r.addr)
		b.Label(r.label)
		for n := 0; n < s.NopPerRegion; n++ {
			if s.LCP {
				b.NopLCP(s.NopLen)
			} else {
				b.Nop(s.NopLen)
			}
		}
		if s.MsromUops > 0 {
			b.Msrom(s.MsromUops)
		}
		if s.JccOffset > 0 {
			// CMP R1,R1 always sets EQ, so the NE jump never fires:
			// architecturally a NOP pair, but the predecoder still has to
			// mark the branch — at offset 15 its second byte lands in the
			// next fetch window and the region stalls JccAlignPenalty
			// cycles on every legacy decode.
			b.Cmp(isa.R1, isa.R1)
			b.Jcc(isa.NE, r.next)
			for n := 0; n < s.JccTailNops; n++ {
				b.Nop(1)
			}
		}
		b.JmpShort(r.next)
	}
	return nil
}

// EntryLabel returns the label of the chain's first region.
func (s *ChainSpec) EntryLabel() string {
	return fmt.Sprintf("%s_s0_w0", s.Label)
}

// LoopProgram wraps the chain in a counted loop: the chain is traversed
// R14 times (the caller presets R14 before each run — keeping the
// count out of the code image means warm-up and measurement runs share
// one image, so the micro-op cache never serves a stale immediate),
// then the program halts. The loop tail is placed at tailAddr, which
// must not collide with the chain's regions.
func (s *ChainSpec) LoopProgram(tailAddr uint64) (*asm.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lowest := s.RegionAddr(minInt(s.Sets), 0)
	if tailAddr >= lowest && tailAddr < s.RegionAddr(maxInt(s.Sets), s.Ways-1)+RegionSize {
		// The tail may still be legal if it dodges every region, but
		// keep the contract simple: require it clear of the span.
		return nil, fmt.Errorf("codegen: tail %#x inside chain span", tailAddr)
	}

	b := asm.New(minU64(tailAddr, lowest))
	emitTail := func() {
		b.Label("entry")
		b.Jmp(s.EntryLabel())
		b.Label("tail")
		b.Subi(isa.R14, 1)
		b.Cmpi(isa.R14, 0)
		b.Jcc(isa.NE, s.EntryLabel())
		b.Halt()
	}
	if tailAddr < lowest {
		// Tail first: header jumps into the chain.
		emitTail()
		if err := s.Emit(b, "tail"); err != nil {
			return nil, err
		}
		return b.Build()
	}
	if err := s.Emit(b, "tail"); err != nil {
		return nil, err
	}
	b.Org(tailAddr)
	emitTail()
	return b.Build()
}

func minInt(v []int) int {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func maxInt(v []int) int {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// EvenSets returns n set indices evenly spaced across the classic 32
// sets, starting at first — the striped occupation of Fig 8.
func EvenSets(n, first int) []int { return EvenSetsIn(0, n, first) }

// EvenSetsIn is EvenSets across a cache of total sets (0 selects the
// classic 32-set layout) — the profile matrix stripes Zen 2's 64-set
// cache through it.
func EvenSetsIn(total, n, first int) []int {
	if n <= 0 {
		return nil
	}
	if total <= 0 {
		total = WayStride / RegionSize
	}
	stride := total / n
	if stride == 0 {
		stride = 1
	}
	sets := make([]int, 0, n)
	for i := 0; i < n; i++ {
		sets = append(sets, (first+i*stride)%total)
	}
	return sets
}

// SequentialRegions emits count contiguous 32-byte regions starting at
// the builder's (32-aligned) PC, each holding exactly uopsPerRegion
// micro-ops as NOPs (the Listing 1 layout: nop15, nop15, nop2 for 3
// µops in 32 bytes). Control falls through region to region.
func SequentialRegions(b *asm.Builder, count, uopsPerRegion int) error {
	if uopsPerRegion < 1 || uopsPerRegion > RegionSize {
		return fmt.Errorf("codegen: %d µops per 32-byte region not encodable", uopsPerRegion)
	}
	if b.PC()%RegionSize != 0 {
		return fmt.Errorf("codegen: PC %#x not 32-aligned", b.PC())
	}
	for i := 0; i < count; i++ {
		b.NopRegion(RegionSize, uopsPerRegion)
	}
	return nil
}

// SequentialLoop builds the Listing 1 microbenchmark: a loop over
// `regions` contiguous 32-byte regions of uopsPerRegion µops each,
// iterated R14 times (preset by the caller before each run).
func SequentialLoop(base uint64, regions, uopsPerRegion int) (*asm.Program, error) {
	b := asm.New(base)
	b.Align(RegionSize)
	b.Label("entry")
	b.Label("loop")
	if err := SequentialRegions(b, regions, uopsPerRegion); err != nil {
		return nil, err
	}
	b.Subi(isa.R14, 1)
	b.Cmpi(isa.R14, 0)
	b.Jcc(isa.NE, "loop")
	b.Halt()
	return b.Build()
}
