// Package bpu models the branch prediction unit: a gshare direction
// predictor, a branch target buffer, an indirect-target predictor, and a
// return stack buffer. The transient-execution attacks depend on real
// predictor state: Spectre-v1 setup mistrains the direction predictor,
// and the variant-2 attack exploits a secret encoded in the indirect
// predictor by earlier authorized executions.
package bpu

// Config sizes the predictor structures.
type Config struct {
	// GshareBits is the log2 size of the pattern history table.
	GshareBits uint
	// BTBEntries and IndirectEntries size the target predictors
	// (direct-mapped, power of two).
	BTBEntries      int
	IndirectEntries int
	// RSBDepth is the return stack depth.
	RSBDepth int
	// HistoryBits is the global-history length folded into the gshare
	// index.
	HistoryBits uint
}

// DefaultConfig mirrors a modest Skylake-class predictor. HistoryBits
// is zero — a bimodal, PC-indexed direction predictor — so that
// in-place mistraining (calling the victim through the attack's own
// code path with benign arguments) reliably aliases the attacked
// branch, as the paper's Spectre-style setups assume. Set HistoryBits
// nonzero for a gshare predictor.
func DefaultConfig() Config {
	return Config{
		GshareBits:      14,
		BTBEntries:      4096,
		IndirectEntries: 1024,
		RSBDepth:        16,
		HistoryBits:     0,
	}
}

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
}

// BPU is one hardware thread's branch prediction unit. On real Intel
// parts some predictor state is competitively shared across SMT threads;
// the model gives each thread its own instance, which is sufficient for
// the paper's single-thread mistraining attacks.
type BPU struct {
	cfg      Config
	pht      []uint8 // 2-bit saturating counters
	history  uint64
	btb      []btbEntry
	indirect []btbEntry
	rsb      []uint64
	rsbTop   int

	// Stats
	DirectionLookups uint64
	DirectionMisses  uint64
}

// New builds a predictor.
func New(cfg Config) *BPU {
	b := &BPU{
		cfg:      cfg,
		pht:      make([]uint8, 1<<cfg.GshareBits),
		btb:      make([]btbEntry, cfg.BTBEntries),
		indirect: make([]btbEntry, cfg.IndirectEntries),
		rsb:      make([]uint64, cfg.RSBDepth),
	}
	for i := range b.pht {
		b.pht[i] = 1 // weakly not-taken
	}
	return b
}

func (b *BPU) phtIndex(pc uint64) uint64 {
	h := b.history & ((1 << b.cfg.HistoryBits) - 1)
	return (pc ^ h) & ((1 << b.cfg.GshareBits) - 1)
}

// PredictDirection predicts taken/not-taken for the conditional branch
// at pc.
func (b *BPU) PredictDirection(pc uint64) bool {
	b.DirectionLookups++
	return b.pht[b.phtIndex(pc)] >= 2
}

// UpdateDirection trains the direction predictor with the resolved
// outcome and advances global history.
func (b *BPU) UpdateDirection(pc uint64, taken, mispredicted bool) {
	if mispredicted {
		b.DirectionMisses++
	}
	idx := b.phtIndex(pc)
	c := b.pht[idx]
	if taken && c < 3 {
		c++
	} else if !taken && c > 0 {
		c--
	}
	b.pht[idx] = c
	b.history = b.history<<1 | boolBit(taken)
}

func boolBit(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// PredictTarget consults the BTB for the direct branch at pc.
func (b *BPU) PredictTarget(pc uint64) (uint64, bool) {
	e := &b.btb[pc%uint64(len(b.btb))]
	if e.valid && e.pc == pc {
		return e.target, true
	}
	return 0, false
}

// UpdateTarget trains the BTB.
func (b *BPU) UpdateTarget(pc, target uint64) {
	b.btb[pc%uint64(len(b.btb))] = btbEntry{pc: pc, target: target, valid: true}
}

// PredictIndirect consults the indirect-target predictor for the
// indirect branch/call at pc. A hit steers fetch — and hence micro-op
// cache fill — to the predicted target before the branch executes,
// which is the footprint the variant-2 attack observes.
func (b *BPU) PredictIndirect(pc uint64) (uint64, bool) {
	e := &b.indirect[pc%uint64(len(b.indirect))]
	if e.valid && e.pc == pc {
		return e.target, true
	}
	return 0, false
}

// UpdateIndirect trains the indirect predictor with the resolved target.
func (b *BPU) UpdateIndirect(pc, target uint64) {
	b.indirect[pc%uint64(len(b.indirect))] = btbEntry{pc: pc, target: target, valid: true}
}

// PushRSB records a return address at a call.
func (b *BPU) PushRSB(ret uint64) {
	b.rsb[b.rsbTop%len(b.rsb)] = ret
	b.rsbTop++
}

// PopRSB predicts the target of a return.
func (b *BPU) PopRSB() (uint64, bool) {
	if b.rsbTop == 0 {
		return 0, false
	}
	b.rsbTop--
	return b.rsb[b.rsbTop%len(b.rsb)], true
}

// State is a deep snapshot of a predictor's dynamic contents, reusable
// across Save calls (the backing arrays are recycled). Snapshots only
// restore into a BPU built from the same Config.
type State struct {
	pht        []uint8
	history    uint64
	btb        []btbEntry
	indirect   []btbEntry
	rsb        []uint64
	rsbTop     int
	dirLookups uint64
	dirMisses  uint64
}

// Save deep-copies the predictor state into s, reusing s's buffers.
func (b *BPU) Save(s *State) {
	s.pht = append(s.pht[:0], b.pht...)
	s.btb = append(s.btb[:0], b.btb...)
	s.indirect = append(s.indirect[:0], b.indirect...)
	s.rsb = append(s.rsb[:0], b.rsb...)
	s.history = b.history
	s.rsbTop = b.rsbTop
	s.dirLookups = b.DirectionLookups
	s.dirMisses = b.DirectionMisses
}

// Restore overwrites the predictor state from s. It panics if s was
// saved from a predictor with different geometry.
func (b *BPU) Restore(s *State) {
	if len(s.pht) != len(b.pht) || len(s.btb) != len(b.btb) ||
		len(s.indirect) != len(b.indirect) || len(s.rsb) != len(b.rsb) {
		panic("bpu: Restore from a checkpoint with different geometry")
	}
	copy(b.pht, s.pht)
	copy(b.btb, s.btb)
	copy(b.indirect, s.indirect)
	copy(b.rsb, s.rsb)
	b.history = s.history
	b.rsbTop = s.rsbTop
	b.DirectionLookups = s.dirLookups
	b.DirectionMisses = s.dirMisses
}

// Reset clears all predictor state (used between independent trials).
func (b *BPU) Reset() {
	for i := range b.pht {
		b.pht[i] = 1
	}
	for i := range b.btb {
		b.btb[i] = btbEntry{}
	}
	for i := range b.indirect {
		b.indirect[i] = btbEntry{}
	}
	b.history = 0
	b.rsbTop = 0
}
