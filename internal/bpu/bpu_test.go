package bpu

import "testing"

func newBPU() *BPU { return New(DefaultConfig()) }

func TestDirectionTrainsTaken(t *testing.T) {
	b := newBPU()
	pc := uint64(0x1000)
	if b.PredictDirection(pc) {
		t.Error("cold prediction taken (counters init weakly not-taken)")
	}
	b.UpdateDirection(pc, true, true)
	b.UpdateDirection(pc, true, false)
	if !b.PredictDirection(pc) {
		t.Error("not taken after two taken updates")
	}
	b.UpdateDirection(pc, false, true)
	b.UpdateDirection(pc, false, false)
	if b.PredictDirection(pc) {
		t.Error("still taken after two not-taken updates")
	}
}

func TestDirectionSaturates(t *testing.T) {
	b := newBPU()
	pc := uint64(0x42)
	for i := 0; i < 10; i++ {
		b.UpdateDirection(pc, true, false)
	}
	// One contrary outcome must not flip a saturated counter.
	b.UpdateDirection(pc, false, true)
	if !b.PredictDirection(pc) {
		t.Error("saturated counter flipped by one outcome")
	}
}

func TestMispredictStats(t *testing.T) {
	b := newBPU()
	b.PredictDirection(0x10)
	b.UpdateDirection(0x10, true, true)
	if b.DirectionLookups != 1 || b.DirectionMisses != 1 {
		t.Errorf("lookups %d misses %d", b.DirectionLookups, b.DirectionMisses)
	}
}

func TestBTB(t *testing.T) {
	b := newBPU()
	if _, ok := b.PredictTarget(0x100); ok {
		t.Error("cold BTB hit")
	}
	b.UpdateTarget(0x100, 0x2000)
	tgt, ok := b.PredictTarget(0x100)
	if !ok || tgt != 0x2000 {
		t.Errorf("BTB = %#x, %v", tgt, ok)
	}
	// A different PC aliasing the same entry replaces it and must not
	// hit for the original until retrained.
	alias := 0x100 + uint64(DefaultConfig().BTBEntries)
	b.UpdateTarget(alias, 0x3000)
	if _, ok := b.PredictTarget(0x100); ok {
		t.Error("stale BTB entry hit after alias replacement")
	}
}

func TestIndirectPredictor(t *testing.T) {
	b := newBPU()
	if _, ok := b.PredictIndirect(0x200); ok {
		t.Error("cold indirect hit")
	}
	b.UpdateIndirect(0x200, 0x8000)
	tgt, ok := b.PredictIndirect(0x200)
	if !ok || tgt != 0x8000 {
		t.Errorf("indirect = %#x, %v", tgt, ok)
	}
	// Retraining moves the prediction — the variant-2 secret encoding.
	b.UpdateIndirect(0x200, 0xC000)
	tgt, _ = b.PredictIndirect(0x200)
	if tgt != 0xC000 {
		t.Errorf("indirect not retrained: %#x", tgt)
	}
}

func TestRSBLIFO(t *testing.T) {
	b := newBPU()
	b.PushRSB(0x1)
	b.PushRSB(0x2)
	b.PushRSB(0x3)
	want := []uint64{0x3, 0x2, 0x1}
	for _, w := range want {
		got, ok := b.PopRSB()
		if !ok || got != w {
			t.Errorf("pop = %#x, %v; want %#x", got, ok, w)
		}
	}
	if _, ok := b.PopRSB(); ok {
		t.Error("pop from empty RSB succeeded")
	}
}

func TestRSBOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	b := New(cfg)
	for i := 0; i < cfg.RSBDepth+4; i++ {
		b.PushRSB(uint64(i))
	}
	// The most recent pushes must still be correct.
	for i := cfg.RSBDepth + 3; i >= 4; i-- {
		got, ok := b.PopRSB()
		if !ok || got != uint64(i) {
			t.Fatalf("pop = %d, %v; want %d", got, ok, i)
		}
	}
}

func TestGshareHistoryDisambiguates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryBits = 8
	b := New(cfg)
	pc := uint64(0x500)
	// Train taken under one history.
	b.UpdateDirection(0x1, true, false) // history ...1
	b.UpdateDirection(pc, true, false)
	b.UpdateDirection(pc, true, false)
	// The same branch under a different history hits a different PHT
	// entry, which is still cold.
	b.UpdateDirection(0x1, false, false)
	b.UpdateDirection(0x1, false, false)
	_ = b.PredictDirection(pc) // must not panic; value depends on aliasing
}

func TestReset(t *testing.T) {
	b := newBPU()
	b.UpdateDirection(0x10, true, false)
	b.UpdateDirection(0x10, true, false)
	b.UpdateTarget(0x10, 0x99)
	b.UpdateIndirect(0x20, 0x99)
	b.PushRSB(0x30)
	b.Reset()
	if b.PredictDirection(0x10) {
		t.Error("direction survived reset")
	}
	if _, ok := b.PredictTarget(0x10); ok {
		t.Error("BTB survived reset")
	}
	if _, ok := b.PredictIndirect(0x20); ok {
		t.Error("indirect survived reset")
	}
	if _, ok := b.PopRSB(); ok {
		t.Error("RSB survived reset")
	}
}
