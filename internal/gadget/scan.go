// Package gadget statically scans SX86 programs for the two
// transient-leak gadget classes the paper counts in real codebases via
// the LGTM platform (§VI-A: 100 µop-cache gadgets vs 19 Spectre-v1
// gadgets in torvalds/linux). The scanner is the in-repo analog of
// that census, applied to guest programs:
//
//   - Variant-1 class ("µop-cache gadget"): a guarded load whose result
//     reaches a conditional or indirect branch — one array access behind
//     a bounds check is enough, because the branch's fetch footprint is
//     the disclosure.
//   - Spectre-v1 class: a guarded load whose result feeds the ADDRESS
//     of a second load — the classic double-load pattern needed for a
//     data-cache disclosure.
//
// Every Spectre-v1 gadget is also a µop-cache gadget candidate when its
// second access is followed by dependent control flow; the paper's
// count being 5× larger follows from the weaker structural requirement,
// which this scanner reproduces on generated programs.
//
// The detection engine is internal/staticlint's taint dataflow in its
// transient-window mode. Compared to the linear pattern scan this
// package originally shipped, the engine kills taint when the guarded
// load's destination is overwritten (MOVI, MOV from a clean register,
// the xor/sub self-zeroing idioms, RDTSC) and tracks taint through
// resolved memory cells, eliminating the spurious findings the old
// scanner produced on overwritten registers.
package gadget

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/staticlint"
)

// Kind classifies a finding.
type Kind int

// Gadget classes.
const (
	// UopCacheGadget is the variant-1 class: guarded load → dependent
	// branch.
	UopCacheGadget Kind = iota
	// SpectreV1Gadget is the classic class: guarded load → dependent
	// second load.
	SpectreV1Gadget
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == UopCacheGadget {
		return "uop-cache"
	}
	return "spectre-v1"
}

// Finding is one detected gadget.
type Finding struct {
	Kind Kind
	// Guard is the conditional branch forming the bypassable check.
	Guard uint64
	// Load is the guarded memory access.
	Load uint64
	// Sink is the dependent instruction that discloses (a branch for
	// UopCacheGadget, a second load for SpectreV1Gadget).
	Sink uint64
}

// String implements fmt.Stringer.
func (f Finding) String() string {
	return fmt.Sprintf("%s gadget: guard %#x → load %#x → sink %#x",
		f.Kind, f.Guard, f.Load, f.Sink)
}

// Scan walks every instruction of the program, treating each
// conditional branch as a potential bypassable guard, and runs the
// reaching-definitions taint engine over its transient window.
func Scan(p *asm.Program) []Finding {
	var out []Finding
	for _, h := range staticlint.ScanGadgets(p, staticlint.DefaultConfig()) {
		f := Finding{Guard: h.Guard, Load: h.Load, Sink: h.Sink}
		switch h.Kind {
		case staticlint.GadgetUopCache:
			f.Kind = UopCacheGadget
		case staticlint.GadgetSpectreV1:
			f.Kind = SpectreV1Gadget
		}
		out = append(out, f)
	}
	return out
}

// Census summarizes a scan the way the paper's Table-free census does:
// counts per class.
type Census struct {
	UopCache  int
	SpectreV1 int
}

// Count tallies findings by kind.
func Count(fs []Finding) Census {
	var c Census
	for _, f := range fs {
		switch f.Kind {
		case UopCacheGadget:
			c.UopCache++
		case SpectreV1Gadget:
			c.SpectreV1++
		}
	}
	return c
}
