// Package gadget statically scans SX86 programs for the two
// transient-leak gadget classes the paper counts in real codebases via
// the LGTM platform (§VI-A: 100 µop-cache gadgets vs 19 Spectre-v1
// gadgets in torvalds/linux). The scanner is the in-repo analog of
// that census, applied to guest programs:
//
//   - Variant-1 class ("µop-cache gadget"): a guarded load whose result
//     reaches a conditional or indirect branch — one array access behind
//     a bounds check is enough, because the branch's fetch footprint is
//     the disclosure.
//   - Spectre-v1 class: a guarded load whose result feeds the ADDRESS
//     of a second load — the classic double-load pattern needed for a
//     data-cache disclosure.
//
// Every Spectre-v1 gadget is also a µop-cache gadget candidate when its
// second access is followed by dependent control flow; the paper's
// count being 5× larger follows from the weaker structural requirement,
// which this scanner reproduces on generated programs.
package gadget

import (
	"fmt"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
)

// Kind classifies a finding.
type Kind int

// Gadget classes.
const (
	// UopCacheGadget is the variant-1 class: guarded load → dependent
	// branch.
	UopCacheGadget Kind = iota
	// SpectreV1Gadget is the classic class: guarded load → dependent
	// second load.
	SpectreV1Gadget
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == UopCacheGadget {
		return "uop-cache"
	}
	return "spectre-v1"
}

// Finding is one detected gadget.
type Finding struct {
	Kind Kind
	// Guard is the conditional branch forming the bypassable check.
	Guard uint64
	// Load is the guarded memory access.
	Load uint64
	// Sink is the dependent instruction that discloses (a branch for
	// UopCacheGadget, a second load for SpectreV1Gadget).
	Sink uint64
}

// String implements fmt.Stringer.
func (f Finding) String() string {
	return fmt.Sprintf("%s gadget: guard %#x → load %#x → sink %#x",
		f.Kind, f.Guard, f.Load, f.Sink)
}

// scanWindow bounds how far past the guard the scanner tracks taint
// (transient windows are finite).
const scanWindow = 24

// Scan walks every instruction of the program, treating each
// conditional branch as a potential bypassable guard and tracking
// the taint of loads on its fall-through path.
func Scan(p *asm.Program) []Finding {
	var out []Finding
	for _, in := range p.Insts {
		if in.Op != isa.JCC {
			continue
		}
		out = append(out, scanFrom(p, in)...)
	}
	return out
}

// scanFrom taints loads after a guard and looks for disclosure sinks.
func scanFrom(p *asm.Program, guard *isa.Inst) []Finding {
	var out []Finding
	// tainted[r] holds the address of the load whose value reached r.
	tainted := map[isa.Reg]uint64{}
	seenUop := map[uint64]bool{}
	seenV1 := map[uint64]bool{}

	pc := guard.End()
	for step := 0; step < scanWindow; step++ {
		in := p.At(pc)
		if in == nil {
			break
		}
		switch in.Op {
		case isa.LOAD, isa.LOADB:
			if src, ok := tainted[in.Src]; ok && !seenV1[src] {
				// Tainted address feeding a second load: the classic
				// Spectre-v1 double-load.
				seenV1[src] = true
				out = append(out, Finding{
					Kind: SpectreV1Gadget, Guard: guard.Addr, Load: src, Sink: in.Addr,
				})
			}
			tainted[in.Dst] = in.Addr
		case isa.MOV:
			if src, ok := tainted[in.Src]; ok {
				tainted[in.Dst] = src
			} else {
				delete(tainted, in.Dst)
			}
		case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
			// Dst stays/becomes tainted if either operand is.
			if !in.HasImm {
				if src, ok := tainted[in.Src]; ok {
					tainted[in.Dst] = src
				}
			}
		case isa.MOVI:
			delete(tainted, in.Dst)
		case isa.CMP, isa.TEST:
			// A compare on a tainted value taints the flags; the
			// immediately following conditional branch is the sink.
			src, ok := tainted[in.Dst]
			if !ok && !in.HasImm {
				src, ok = tainted[in.Src]
			}
			if ok {
				// Look ahead for the dependent branch.
				if nxt := p.At(in.End()); nxt != nil && nxt.Op == isa.JCC && !seenUop[src] {
					seenUop[src] = true
					out = append(out, Finding{
						Kind: UopCacheGadget, Guard: guard.Addr, Load: src, Sink: nxt.Addr,
					})
				}
			}
		case isa.JMPI, isa.CALLI:
			if src, ok := tainted[in.Dst]; ok && !seenUop[src] {
				seenUop[src] = true
				out = append(out, Finding{
					Kind: UopCacheGadget, Guard: guard.Addr, Load: src, Sink: in.Addr,
				})
			}
			return out
		case isa.JMP, isa.CALL, isa.RET, isa.HALT, isa.SYSCALL, isa.SYSRET:
			// Control leaves the straight-line window.
			return out
		}
		pc = in.End()
	}
	return out
}

// Census summarizes a scan the way the paper's Table-free census does:
// counts per class.
type Census struct {
	UopCache  int
	SpectreV1 int
}

// Count tallies findings by kind.
func Count(fs []Finding) Census {
	var c Census
	for _, f := range fs {
		switch f.Kind {
		case UopCacheGadget:
			c.UopCache++
		case SpectreV1Gadget:
			c.SpectreV1++
		}
	}
	return c
}
