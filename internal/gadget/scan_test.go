package gadget

import (
	"testing"

	"deaduops/internal/asm"
	"deaduops/internal/isa"
	"deaduops/internal/ref"
	"deaduops/internal/victim"
)

func TestFindsUopCacheGadgetInVictim(t *testing.T) {
	// The Listing 4 victim alone is NOT a µop-cache gadget (no
	// dependent branch), but the pci_vpd_find_tag-style victim is.
	b := asm.New(0x20000)
	victim.PCIVPDStyleGadget(b, victim.DefaultLayout())
	b.Label("vpd_large")
	b.Ret()
	b.Label("vpd_small")
	b.Ret()
	p := b.MustBuild()

	found := Scan(p)
	c := Count(found)
	if c.UopCache == 0 {
		t.Fatalf("scanner missed the pci_vpd-style gadget: %v", found)
	}
}

func TestFindsSpectreV1DoubleLoad(t *testing.T) {
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out") // guard
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Shli(isa.R2, 6)
	b.Loadb(isa.R3, isa.R2, 0x8000) // tainted address: double load
	b.Label("out")
	b.Halt()
	p := b.MustBuild()

	c := Count(Scan(p))
	if c.SpectreV1 == 0 {
		t.Error("scanner missed the double-load gadget")
	}
}

func TestFindsIndirectBranchSink(t *testing.T) {
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out")
	b.Load(isa.R2, isa.R1, 0x2000)
	b.Jmpi(isa.R2) // tainted indirect target
	b.Label("out")
	b.Halt()
	p := b.MustBuild()
	c := Count(Scan(p))
	if c.UopCache == 0 {
		t.Error("scanner missed the indirect-branch sink")
	}
}

func TestNoFalsePositiveWithoutDependence(t *testing.T) {
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out")
	b.Load(isa.R2, isa.R1, 0x2000) // guarded load…
	b.Movi(isa.R3, 1)              // …but nothing depends on it
	b.Cmpi(isa.R3, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	p := b.MustBuild()
	c := Count(Scan(p))
	if c.UopCache != 0 || c.SpectreV1 != 0 {
		t.Errorf("false positives: %+v", c)
	}
}

func TestMoviClearsTaint(t *testing.T) {
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out")
	b.Load(isa.R2, isa.R1, 0x2000)
	b.Movi(isa.R2, 5) // overwrite kills the taint
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	if c := Count(Scan(b.MustBuild())); c.UopCache != 0 {
		t.Errorf("taint survived an overwrite: %+v", c)
	}
}

func TestZeroIdiomKillsTaint(t *testing.T) {
	// Regression: the original linear scanner propagated taint through
	// the xor-self zeroing idiom (dst stays "tainted" because its own
	// operand is), flagging a spurious µop-cache gadget here — the
	// branch depends on the constant 0, not the guarded load. The
	// reaching-definitions engine kills the definition on overwrite.
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out")
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Xor(isa.R2, isa.R2) // r2 = 0: the load's definition dies here
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	if c := Count(Scan(b.MustBuild())); c.UopCache != 0 {
		t.Errorf("taint survived xor-self overwrite: %+v", c)
	}
}

func TestSubSelfKillsTaint(t *testing.T) {
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out")
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Sub(isa.R2, isa.R2) // r2 = 0
	b.Shli(isa.R2, 6)
	b.Loadb(isa.R3, isa.R2, 0x8000) // address is the constant 0x8000
	b.Label("out")
	b.Halt()
	if c := Count(Scan(b.MustBuild())); c.SpectreV1 != 0 {
		t.Errorf("taint survived sub-self overwrite: %+v", c)
	}
}

func TestRdtscOverwriteKillsTaint(t *testing.T) {
	// Regression: RDTSC overwrites its destination with the cycle
	// counter; the original scanner had no case for it, so the guarded
	// load's taint leaked through to the branch.
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out")
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Rdtsc(isa.R2) // overwrites r2: definition killed
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	if c := Count(Scan(b.MustBuild())); c.UopCache != 0 {
		t.Errorf("taint survived rdtsc overwrite: %+v", c)
	}
}

func TestTaintThroughResolvedMemory(t *testing.T) {
	// Precision gain over the linear scanner: a guarded load spilled
	// to a resolved address and reloaded keeps its original source
	// attribution, so the finding names the first (guarded) load.
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out")
	loadAddr := b.PC()
	b.Loadb(isa.R2, isa.R1, 0x2000) // the guarded load
	b.Movi(isa.R3, 0x5000)
	b.Store(isa.R3, 0, isa.R2) // spill to [0x5000]
	b.Movi(isa.R2, 0)          // kill the register copy
	b.Load(isa.R4, isa.R3, 0)  // reload from [0x5000]
	b.Cmpi(isa.R4, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	found := Scan(b.MustBuild())
	ok := false
	for _, f := range found {
		if f.Kind == UopCacheGadget && f.Load == loadAddr {
			ok = true
		}
	}
	if !ok {
		t.Errorf("taint lost through memory spill/reload: %v", found)
	}
}

func TestTaintFlowsThroughALU(t *testing.T) {
	b := asm.New(0x1000)
	b.Cmpi(isa.R1, 100)
	b.Jcc(isa.AE, "out")
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Mov(isa.R3, isa.R2)
	b.And(isa.R4, isa.R3) // reg-form ALU propagates
	b.Cmpi(isa.R4, 0)
	b.Jcc(isa.NE, "out")
	b.Label("out")
	b.Halt()
	if c := Count(Scan(b.MustBuild())); c.UopCache == 0 {
		t.Error("taint lost through mov+alu chain")
	}
}

func TestCensusOnIdiomaticCorpus(t *testing.T) {
	// An in-repo analog of the paper's LGTM census: a corpus of
	// idiomatic bounds-checked library routines. The µop-cache gadget
	// class (guarded load → dependent branch) is structurally easier
	// to satisfy than the classic double-load, so it dominates —
	// the paper counts 100 vs 19 in torvalds/linux.
	p := buildIdiomaticCorpus(t)
	c := Count(Scan(p))
	t.Logf("corpus census: µop-cache %d, spectre-v1 %d", c.UopCache, c.SpectreV1)
	if c.UopCache <= c.SpectreV1 {
		t.Errorf("census inverted: uop-cache %d ≤ spectre-v1 %d", c.UopCache, c.SpectreV1)
	}
	if c.UopCache < 4 || c.SpectreV1 < 1 {
		t.Errorf("corpus counts too low: %+v", c)
	}
}

// buildIdiomaticCorpus assembles routines mirroring the kernel idioms
// the paper's census finds: tag parsers, flag checks, table walks.
func buildIdiomaticCorpus(t *testing.T) *asm.Program {
	t.Helper()
	b := asm.New(0x10000)
	emitGuard := func(out string) {
		b.Cmpi(isa.R1, 256)
		b.Jcc(isa.AE, out)
	}

	// 1. Tag parser: load byte, mask, branch on tag (µop-cache class).
	b.Label("parse_tag")
	emitGuard("parse_out")
	b.Loadb(isa.R2, isa.R1, 0x2000)
	b.Andi(isa.R2, 0x80)
	b.Cmpi(isa.R2, 0)
	b.Jcc(isa.NE, "parse_out")
	b.Label("parse_out")
	b.Ret()

	// 2. Flag check: load word, test bit, branch (µop-cache class).
	b.Align(64)
	b.Label("check_flags")
	emitGuard("flags_out")
	b.Load(isa.R3, isa.R1, 0x3000)
	b.Testi(isa.R3, 4)
	b.Jcc(isa.EQ, "flags_out")
	b.Label("flags_out")
	b.Ret()

	// 3. State machine step: load state, compare, branch (µop-cache).
	b.Align(64)
	b.Label("fsm_step")
	emitGuard("fsm_out")
	b.Loadb(isa.R4, isa.R1, 0x4000)
	b.Cmpi(isa.R4, 7)
	b.Jcc(isa.EQ, "fsm_out")
	b.Label("fsm_out")
	b.Ret()

	// 4. Handler dispatch: load index, indirect call (µop-cache).
	b.Align(64)
	b.Label("dispatch")
	emitGuard("disp_out")
	b.Load(isa.R5, isa.R1, 0x5000)
	b.Jmpi(isa.R5)
	b.Label("disp_out")
	b.Ret()

	// 5. Length-prefixed copy setup: load length, branch (µop-cache).
	b.Align(64)
	b.Label("copy_len")
	emitGuard("copy_out")
	b.Loadb(isa.R6, isa.R1, 0x6000)
	b.Cmpi(isa.R6, 64)
	b.Jcc(isa.GT, "copy_out")
	b.Label("copy_out")
	b.Ret()

	// 6. Classic double-load table walk (spectre-v1 class; its value is
	// consumed arithmetically, not by a branch).
	b.Align(64)
	b.Label("table_walk")
	emitGuard("walk_out")
	b.Loadb(isa.R7, isa.R1, 0x7000)
	b.Shli(isa.R7, 6)
	b.Loadb(isa.R8, isa.R7, 0x8000)
	b.Add(isa.R9, isa.R8)
	b.Label("walk_out")
	b.Ret()

	// 7. Benign: guarded load consumed by a store only (no gadget).
	b.Align(64)
	b.Label("benign_copy")
	emitGuard("benign_out")
	b.Loadb(isa.R10, isa.R1, 0x9000)
	b.Storeb(isa.R2, 0xA000, isa.R10)
	b.Label("benign_out")
	b.Ret()

	return b.MustBuild()
}

func TestScanRandomProgramsSmoke(t *testing.T) {
	// Random programs must scan without panicking; gadget density in
	// unstructured code is incidental.
	cfg := ref.DefaultGenConfig()
	for seed := uint64(1); seed <= 20; seed++ {
		p, err := ref.Generate(seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		Scan(p)
	}
}
