package parsweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapPreservesOrder checks that results land at their input index
// no matter how the scheduler interleaves workers.
func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(Options{Workers: workers}, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapEmpty checks the degenerate sweep.
func TestMapEmpty(t *testing.T) {
	got, err := Map(Options{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: got %v, %v", got, err)
	}
}

// TestMapError checks that a failing point surfaces its error and that
// the sequential path reports the first (lowest-index) failure.
func TestMapError(t *testing.T) {
	sentinel := errors.New("point 3 broke")
	for _, workers := range []int{1, 4} {
		_, err := Map(Options{Workers: workers}, 10, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("point %d broke", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		_ = sentinel
		if workers == 1 && err.Error() != "point 3 broke" {
			t.Fatalf("sequential: got error %q, want first failure", err)
		}
	}
}

// TestMapErrorStopsEarly checks the best-effort cancellation: once a
// point fails, unstarted points should (mostly) not run. With one
// worker and an early failure, nothing after the failing index runs.
func TestMapErrorStopsEarly(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(Options{Workers: 1}, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, errors.New("boom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n != 3 {
		t.Fatalf("sequential early stop: ran %d points, want 3", n)
	}
}

// TestMapArenaPerWorkerSetup checks that setup runs once per worker,
// never more than the pool size, and that state is never shared
// between concurrent points.
func TestMapArenaPerWorkerSetup(t *testing.T) {
	var setups atomic.Int64
	type arena struct{ scratch []int }
	const n = 200
	got, err := MapArena(Options{Workers: 4}, n,
		func() *arena {
			setups.Add(1)
			return &arena{scratch: make([]int, 8)}
		},
		func(a *arena, i int) (int, error) {
			// Exclusive use: stamp, yield, verify the stamp survived.
			a.scratch[0] = i
			runtime.Gosched()
			if a.scratch[0] != i {
				return 0, fmt.Errorf("arena shared between workers at point %d", i)
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	if s := setups.Load(); s < 1 || s > 4 {
		t.Fatalf("setup ran %d times, want 1..4", s)
	}
}

// TestMapWorkerPanicPropagates checks that a panicking point takes the
// whole map down rather than deadlocking or being swallowed.
func TestMapWorkerPanicPropagates(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate")
		}
		if s := fmt.Sprint(p); !strings.Contains(s, "kaboom") {
			t.Fatalf("panic %q does not mention original value", s)
		}
	}()
	_, _ = Map(Options{Workers: 4}, 16, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
}

// TestEffectiveWorkers pins the pool-sizing rules.
func TestEffectiveWorkers(t *testing.T) {
	if got := (Options{Workers: 8}).EffectiveWorkers(3); got != 3 {
		t.Fatalf("capped by points: got %d, want 3", got)
	}
	if got := (Options{Workers: 2}).EffectiveWorkers(100); got != 2 {
		t.Fatalf("capped by option: got %d, want 2", got)
	}
	if got := (Options{}).EffectiveWorkers(100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default: got %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Workers: -3}).EffectiveWorkers(100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative: got %d, want GOMAXPROCS", got)
	}
}

// TestMapDeterministicAcrossWorkerCounts runs the same pure sweep at
// several pool sizes and requires byte-identical assembled results —
// the core determinism contract the experiments rely on.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) string {
		got, err := Map(Options{Workers: workers}, 64, func(i int) (string, error) {
			return fmt.Sprintf("point-%03d", i*7%64), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(got, "\n")
	}
	want := run(1)
	for _, w := range []int{2, 3, 8} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d output differs from sequential", w)
		}
	}
}

// errPayload is a distinguishable panic payload type: the re-raise
// must preserve it intact, not flatten it into a string.
type errPayload struct{ code int }

// TestMapWorkerPanicPreservesValue checks that the re-raised panic is a
// *PanicError wrapping the worker's original payload by value and
// carrying the worker goroutine's stack — the frames that name the
// faulting function, which a plain re-panic on the caller's goroutine
// would have lost.
func TestMapWorkerPanicPreservesValue(t *testing.T) {
	original := errPayload{code: 42}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate")
		}
		pe, ok := p.(*PanicError)
		if !ok {
			t.Fatalf("re-raised panic is %T, want *PanicError", p)
		}
		got, ok := pe.Value.(errPayload)
		if !ok || got != original {
			t.Fatalf("payload = %#v (%T), want original %#v", pe.Value, pe.Value, original)
		}
		if !strings.Contains(string(pe.Stack), "explodingPoint") {
			t.Fatalf("captured stack does not name the faulting function:\n%s", pe.Stack)
		}
	}()
	_, _ = Map(Options{Workers: 4}, 16, func(i int) (int, error) {
		if i == 5 {
			explodingPoint(original)
		}
		return i, nil
	})
}

//go:noinline
func explodingPoint(v errPayload) { panic(v) }

// TestMapWorkerPanicUnwrapsError checks errors.As/Is reach an error
// payload through the wrapper.
func TestMapWorkerPanicUnwrapsError(t *testing.T) {
	sentinel := errors.New("worker exploded")
	defer func() {
		p := recover()
		pe, ok := p.(*PanicError)
		if !ok {
			t.Fatalf("re-raised panic is %T, want *PanicError", p)
		}
		if !errors.Is(pe, sentinel) {
			t.Fatalf("errors.Is(%v, sentinel) = false", pe)
		}
	}()
	_, _ = Map(Options{Workers: 2}, 4, func(i int) (int, error) {
		if i == 1 {
			panic(sentinel)
		}
		return i, nil
	})
}

// TestPoolRunsJobs checks basic dispatch: every submitted job runs
// exactly once and Close drains the queue before returning.
func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if !p.TrySubmit(func() { ran.Add(1) }) {
			t.Fatalf("submission %d rejected with capacity to spare", i)
		}
	}
	p.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d jobs, want 50", got)
	}
}

// TestPoolBackpressure checks the bounded-queue contract: submissions
// past the queue capacity are rejected, not buffered.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 2)
	block := make(chan struct{})
	release := func() { close(block) }
	defer p.Close()
	defer release()
	if !p.TrySubmit(func() { <-block }) {
		t.Fatal("first submission rejected")
	}
	// The worker is now parked on the blocking job; fill the queue.
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.TrySubmit(func() { <-block }) {
			accepted++
		}
	}
	if accepted > 2 {
		t.Fatalf("queue of 2 accepted %d pending jobs", accepted)
	}
	if d := p.QueueDepth(); d == 0 {
		t.Fatal("queue depth 0 with pending jobs")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("full queue accepted another job")
	}
}

// TestPoolSurvivesJobPanic checks a panicking job is contained: the
// worker reports it through OnPanic and keeps serving later jobs.
func TestPoolSurvivesJobPanic(t *testing.T) {
	p := NewPool(1, 8)
	var caught atomic.Pointer[PanicError]
	p.OnPanic = func(pe *PanicError) { caught.Store(pe) }
	if !p.TrySubmit(func() { panic("job exploded") }) {
		t.Fatal("submission rejected")
	}
	done := make(chan struct{})
	if !p.TrySubmit(func() { close(done) }) {
		t.Fatal("follow-up submission rejected")
	}
	<-done
	p.Close()
	pe := caught.Load()
	if pe == nil {
		t.Fatal("OnPanic never observed the job panic")
	}
	if v, ok := pe.Value.(string); !ok || v != "job exploded" {
		t.Fatalf("OnPanic payload = %#v, want original string", pe.Value)
	}
}

// TestPoolClosedRejects checks submissions after Close are refused.
func TestPoolClosedRejects(t *testing.T) {
	p := NewPool(2, 4)
	p.Close()
	if p.TrySubmit(func() {}) {
		t.Fatal("closed pool accepted a job")
	}
}
