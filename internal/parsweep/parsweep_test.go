package parsweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapPreservesOrder checks that results land at their input index
// no matter how the scheduler interleaves workers.
func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(Options{Workers: workers}, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapEmpty checks the degenerate sweep.
func TestMapEmpty(t *testing.T) {
	got, err := Map(Options{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: got %v, %v", got, err)
	}
}

// TestMapError checks that a failing point surfaces its error and that
// the sequential path reports the first (lowest-index) failure.
func TestMapError(t *testing.T) {
	sentinel := errors.New("point 3 broke")
	for _, workers := range []int{1, 4} {
		_, err := Map(Options{Workers: workers}, 10, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("point %d broke", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		_ = sentinel
		if workers == 1 && err.Error() != "point 3 broke" {
			t.Fatalf("sequential: got error %q, want first failure", err)
		}
	}
}

// TestMapErrorStopsEarly checks the best-effort cancellation: once a
// point fails, unstarted points should (mostly) not run. With one
// worker and an early failure, nothing after the failing index runs.
func TestMapErrorStopsEarly(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(Options{Workers: 1}, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, errors.New("boom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n != 3 {
		t.Fatalf("sequential early stop: ran %d points, want 3", n)
	}
}

// TestMapArenaPerWorkerSetup checks that setup runs once per worker,
// never more than the pool size, and that state is never shared
// between concurrent points.
func TestMapArenaPerWorkerSetup(t *testing.T) {
	var setups atomic.Int64
	type arena struct{ scratch []int }
	const n = 200
	got, err := MapArena(Options{Workers: 4}, n,
		func() *arena {
			setups.Add(1)
			return &arena{scratch: make([]int, 8)}
		},
		func(a *arena, i int) (int, error) {
			// Exclusive use: stamp, yield, verify the stamp survived.
			a.scratch[0] = i
			runtime.Gosched()
			if a.scratch[0] != i {
				return 0, fmt.Errorf("arena shared between workers at point %d", i)
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	if s := setups.Load(); s < 1 || s > 4 {
		t.Fatalf("setup ran %d times, want 1..4", s)
	}
}

// TestMapWorkerPanicPropagates checks that a panicking point takes the
// whole map down rather than deadlocking or being swallowed.
func TestMapWorkerPanicPropagates(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate")
		}
		if s := fmt.Sprint(p); !strings.Contains(s, "kaboom") {
			t.Fatalf("panic %q does not mention original value", s)
		}
	}()
	_, _ = Map(Options{Workers: 4}, 16, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
}

// TestEffectiveWorkers pins the pool-sizing rules.
func TestEffectiveWorkers(t *testing.T) {
	if got := (Options{Workers: 8}).EffectiveWorkers(3); got != 3 {
		t.Fatalf("capped by points: got %d, want 3", got)
	}
	if got := (Options{Workers: 2}).EffectiveWorkers(100); got != 2 {
		t.Fatalf("capped by option: got %d, want 2", got)
	}
	if got := (Options{}).EffectiveWorkers(100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default: got %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Workers: -3}).EffectiveWorkers(100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative: got %d, want GOMAXPROCS", got)
	}
}

// TestMapDeterministicAcrossWorkerCounts runs the same pure sweep at
// several pool sizes and requires byte-identical assembled results —
// the core determinism contract the experiments rely on.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) string {
		got, err := Map(Options{Workers: workers}, 64, func(i int) (string, error) {
			return fmt.Sprintf("point-%03d", i*7%64), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(got, "\n")
	}
	want := run(1)
	for _, w := range []int{2, 3, 8} {
		if got := run(w); got != want {
			t.Fatalf("workers=%d output differs from sequential", w)
		}
	}
}
