package parsweep

import (
	"runtime"
	"sync"
)

// Pool is the server-side half of the package: where Map/MapArena run
// one finite sweep and return, Pool is a long-lived fixed-size worker
// pool draining a bounded job queue — the audit daemon's job
// dispatcher. The queue bound is the backpressure contract: a full
// queue rejects the submission immediately (the caller turns that into
// 429 + Retry-After) instead of growing memory without bound. Safe for
// concurrent submission. A panicking job is contained: the worker
// recovers, reports through OnPanic when set, and keeps serving.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// OnPanic, when non-nil, observes a job's recovered panic (wrapped
	// with the worker's stack). Set it before the first submission;
	// when nil, panics are swallowed after recovery — the pool itself
	// must survive either way.
	OnPanic func(*PanicError)

	workers int
}

// NewPool starts workers goroutines (GOMAXPROCS when <= 0) behind a
// queue holding at most queueCap pending jobs (minimum 1).
func NewPool(workers, queueCap int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueCap < 1 {
		queueCap = 1
	}
	p := &Pool{jobs: make(chan func(), queueCap), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.runJob(job)
			}
		}()
	}
	return p
}

func (p *Pool) runJob(job func()) {
	defer func() {
		if v := recover(); v != nil {
			pe := wrapPanic(v)
			if p.OnPanic != nil {
				p.OnPanic(pe)
			}
		}
	}()
	job()
}

// TrySubmit enqueues job without blocking. It reports false when the
// queue is full or the pool is closed — the caller's signal to shed
// load.
func (p *Pool) TrySubmit(job func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- job:
		return true
	default:
		return false
	}
}

// QueueDepth returns the number of jobs waiting in the queue (not
// counting jobs already claimed by a worker).
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting new jobs, drains the queue, and joins the
// workers. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
