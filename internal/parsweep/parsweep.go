// Package parsweep runs embarrassingly parallel sweep points across a
// bounded worker pool. Every figure and table in internal/experiments
// is a list of independent measurements — each point builds its own
// CPU, BPU, and µop cache and shares nothing — so the only thing the
// pool has to guarantee is deterministic assembly: results come back
// in input order and the reported error is the one from the
// lowest-numbered failing point, regardless of scheduling.
//
// The pool is sized by Options.Workers (GOMAXPROCS when unset). A
// per-worker setup hook lets each worker build one reusable resource —
// in practice a cpu.Arena, so a 48-point sweep touches 8 guest-memory
// images instead of 48.
package parsweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is the typed value a pool re-raises when a worker
// goroutine panics: the original panic payload survives intact (so a
// recovering caller can inspect or re-throw the genuine value instead
// of a flattened string) and Stack carries the panicking worker's
// stack, captured at the recovery point — the frames the re-raise on
// the calling goroutine would otherwise destroy.
type PanicError struct {
	// Value is the worker's original panic payload, unmodified.
	Value any
	// Stack is the worker goroutine's stack at recovery
	// (runtime/debug.Stack), including the panicking frames.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parsweep: worker panicked: %v", e.Value)
}

// Unwrap exposes an error payload to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// wrapPanic normalizes a recovered value into a *PanicError, passing an
// already-wrapped panic (a nested pool) through untouched.
func wrapPanic(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Options tunes a parallel map.
type Options struct {
	// Workers bounds pool concurrency. Zero or negative selects
	// runtime.GOMAXPROCS(0). Workers == 1 runs the points sequentially
	// on the calling goroutine (no pool, trivially deterministic).
	Workers int
}

// EffectiveWorkers resolves Workers to the concrete pool size used for
// an n-point sweep: GOMAXPROCS when unset, and never more workers than
// points.
func (o Options) EffectiveWorkers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map evaluates fn(i) for every i in [0, n) and returns the results in
// input order. The error returned is the one produced by the
// lowest-numbered failing point; once any point fails, remaining
// unstarted points are skipped (best effort — in-flight points finish).
func Map[T any](opt Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return mapWorker(opt, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapArena evaluates fn(s, i) for every i in [0, n), where s is a
// per-worker value built once by setup — typically a reusable
// simulator arena, so state is recycled across the points one worker
// executes without ever being shared between workers. Ordering and
// error semantics match Map.
func MapArena[S, T any](opt Options, n int, setup func() S, fn func(s S, i int) (T, error)) ([]T, error) {
	return mapWorker(opt, n, setup, fn)
}

func mapWorker[S, T any](opt Options, n int, setup func() S, fn func(s S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	workers := opt.EffectiveWorkers(n)
	if workers == 1 {
		s := setup()
		for i := 0; i < n; i++ {
			r, err := fn(s, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next    atomic.Int64 // next unclaimed point index
		failed  atomic.Bool  // set once any point errors (stops new claims)
		mu      sync.Mutex   // guards firstErrIdx/firstErr/panicked
		firstEI = n          // lowest failing index seen so far
		firstE  error
		panicV  any
		panhit  bool
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < firstEI {
			firstEI, firstE = i, err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					// Wrap at the recovery point, while the worker's stack
					// still exists: the re-raise below happens on the calling
					// goroutine, whose stack says nothing about the fault.
					failed.Store(true)
					mu.Lock()
					if !panhit {
						panhit, panicV = true, wrapPanic(p)
					}
					mu.Unlock()
				}
			}()
			s := setup()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(s, i)
				if err != nil {
					record(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if panhit {
		// Re-raise the typed wrapper, not a formatted string: the original
		// payload's type and the worker's stack stay recoverable.
		panic(panicV)
	}
	if firstE != nil {
		return nil, firstE
	}
	return results, nil
}
